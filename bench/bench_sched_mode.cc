/**
 * @file
 * Scheduling-backend benchmark and regression gate: the event-driven
 * scheduler's reason to exist is sparse traffic, where the cycle loop
 * burns a full iteration per empty cycle while the event backend jumps
 * straight to the next deadline. This binary measures both backends on
 * a 16x16, 2-VC mesh (fig7b, route table compiled, uniform traffic)
 * over exactly the measurement window via the measurement-phase hooks
 * — both schedulers wake at the MeasureStart/MeasureEnd cycles, so the
 * window brackets identical simulated spans and excludes the one-time
 * RouteTable fill.
 *
 * Exit is non-zero when
 *  - at the near-idle load (1e-5 flits/node/cycle) event mode is not
 *    at least 5x faster than cycle mode over the window, or
 *  - at the saturation load cycle mode regresses more than 10% below
 *    the committed baseline (BENCH_sim.json's
 *    sched_mode.cycle_sat_cycles_per_sec, via EBDA_SIM_BASELINE_JSON;
 *    gate skipped when the baseline predates this bench), or
 *  - the two backends disagree on any result field other than the
 *    trailing schedMode/wakeups pair (trace equivalence, re-checked
 *    here on the actual bench configs), or
 *  - a run deadlocks, aborts, or the hooks never fire.
 *
 * Machine-readable output: the JSON summary goes to stdout and, when
 * EBDA_SCHED_BENCH_JSON is set, to that path;
 * scripts/perf_baseline.sh merges it into BENCH_sim.json as the
 * `sched_mode` member.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sim/event_queue.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"
#include "util/json.hh"

namespace ebda {
namespace {

using Clock = std::chrono::steady_clock;

/** Result JSON minus the trailing schedMode/wakeups pair — the only
 *  fields the two backends may legitimately disagree on. */
std::string
stripSchedTail(const sim::SimResult &r)
{
    std::string json = sim::toJson(r);
    const auto pos = json.find(",\"schedMode\":");
    if (pos != std::string::npos)
        json.erase(pos, json.size() - 1 - pos); // keep the final '}'
    return json;
}

struct RepResult
{
    bool clean = false;
    double windowSeconds = 0.0;
    double cyclesPerSec = 0.0;
    std::uint64_t wakeups = 0;
    std::string strippedJson;
};

RepResult
runOnce(const topo::Network &net, const cdg::RoutingRelation &rel,
        const sim::TrafficGenerator &gen, sim::SimConfig cfg,
        sim::SchedMode mode)
{
    cfg.schedMode = mode;
    sim::Simulator simulator(net, rel, gen, cfg);

    struct Window
    {
        bool started = false;
        bool ended = false;
        Clock::time_point t0, t1;
    } w;
    simulator.setMeasurePhaseHooks(
        [&] {
            w.started = true;
            w.t0 = Clock::now();
        },
        [&] {
            w.t1 = Clock::now();
            w.ended = true;
        });

    const auto result = simulator.run();

    RepResult rep;
    rep.clean = w.started && w.ended && !result.deadlocked
        && !result.aborted;
    if (!rep.clean)
        std::cerr << "run did not cover the measurement window cleanly"
                  << " (started=" << w.started << " ended=" << w.ended
                  << " deadlocked=" << result.deadlocked << ")\n";
    rep.windowSeconds =
        std::chrono::duration<double>(w.t1 - w.t0).count();
    rep.cyclesPerSec = rep.windowSeconds > 0
        ? static_cast<double>(cfg.measureCycles) / rep.windowSeconds
        : 0.0;
    rep.wakeups = result.wakeups;
    rep.strippedJson = stripSchedTail(result);
    return rep;
}

/** Best-of-kReps window time for one (config, mode) point; the
 *  stripped result JSON is identical across reps (determinism). */
struct ModePoint
{
    bool clean = true;
    double bestCyclesPerSec = 0.0;
    std::uint64_t wakeups = 0;
    std::string strippedJson;
};

constexpr int kReps = 3;

ModePoint
measure(const topo::Network &net, const cdg::RoutingRelation &rel,
        const sim::TrafficGenerator &gen, const sim::SimConfig &cfg,
        sim::SchedMode mode, const char *tag)
{
    ModePoint p;
    for (int r = 0; r < kReps; ++r) {
        const RepResult rep = runOnce(net, rel, gen, cfg, mode);
        p.clean = p.clean && rep.clean;
        if (rep.cyclesPerSec > p.bestCyclesPerSec)
            p.bestCyclesPerSec = rep.cyclesPerSec;
        p.wakeups = rep.wakeups;
        p.strippedJson = rep.strippedJson;
        std::fprintf(stderr, "  %s rep %d: %.3f ms window\n", tag, r,
                     rep.windowSeconds * 1e3);
    }
    return p;
}

double
baselineSatCyclesPerSec(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "baseline " << path << " unreadable; sat gate "
                  << "skipped\n";
        return 0.0;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const auto doc = parseJson(buf.str(), &err);
    if (!doc || !doc->isObject()) {
        std::cerr << "baseline " << path << " unparseable (" << err
                  << "); sat gate skipped\n";
        return 0.0;
    }
    if (const JsonValue *sm = doc->find("sched_mode"))
        if (const JsonValue *cps = sm->find("cycle_sat_cycles_per_sec"))
            return cps->asDouble();
    std::cerr << "baseline has no sched_mode member (predates this "
              << "bench); sat gate skipped\n";
    return 0.0;
}

int
benchMain()
{
    const auto net = topo::Network::mesh({16, 16}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    if (!rel) {
        std::cerr << "makeRouter(fig7b) failed\n";
        return 1;
    }
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 20000;
    cfg.drainCycles = 50000;
    cfg.watchdogCycles = 5000;
    cfg.seed = 2024;
    cfg.routeTable = true;

    bool pass = true;

    // Near-idle point: the event backend's home turf. A packet every
    // ~25k cycles per node, so almost every cycle is empty and the
    // idle jump should skip straight between injection deadlines.
    auto idle_cfg = cfg;
    idle_cfg.injectionRate = 1e-5;
    std::fprintf(stderr, "idle point (uniform %.0e):\n",
                 idle_cfg.injectionRate);
    const auto idle_cycle = measure(net, *rel, gen, idle_cfg,
                                    sim::SchedMode::Cycle, "cycle");
    const auto idle_event = measure(net, *rel, gen, idle_cfg,
                                    sim::SchedMode::Event, "event");
    if (!idle_cycle.clean || !idle_event.clean)
        pass = false;
    if (idle_cycle.strippedJson != idle_event.strippedJson) {
        std::cerr << "idle point: backends disagree beyond the "
                  << "schedMode/wakeups tail\n";
        pass = false;
    }
    const double speedup = idle_cycle.bestCyclesPerSec > 0
        ? idle_event.bestCyclesPerSec / idle_cycle.bestCyclesPerSec
        : 0.0;

    // Saturation point: every cycle moves flits, so the event backend
    // degenerates into the cycle loop plus queue overhead. The cycle
    // backend is gated against the committed baseline here — the
    // scheduler seam must not tax the dense path.
    auto sat_cfg = cfg;
    sat_cfg.injectionRate = 0.30;
    // A token drain phase so the MeasureEnd hook's cycle is executed
    // (the loop stops at warmup+measure+drain); the backlog of a
    // beyond-saturation run need not actually drain.
    sat_cfg.drainCycles = 2000;
    std::fprintf(stderr, "saturation point (uniform %.2f):\n",
                 sat_cfg.injectionRate);
    const auto sat_cycle = measure(net, *rel, gen, sat_cfg,
                                   sim::SchedMode::Cycle, "cycle");
    const auto sat_event = measure(net, *rel, gen, sat_cfg,
                                   sim::SchedMode::Event, "event");
    if (!sat_cycle.clean || !sat_event.clean)
        pass = false;
    if (sat_cycle.strippedJson != sat_event.strippedJson) {
        std::cerr << "saturation point: backends disagree beyond the "
                  << "schedMode/wakeups tail\n";
        pass = false;
    }

    std::printf(
        "sched mode (fig7b, mesh 16x16, 2 VCs/dim, uniform, %llu "
        "measured cycles, best of %d; injection SIMD path: %s):\n"
        "  idle 1e-5:  cycle %.0f cycles/s, event %.0f cycles/s "
        "(%llu wakeups) -> %.1fx (gate >= 5x): %s\n"
        "  sat  0.30:  cycle %.0f cycles/s, event %.0f cycles/s\n",
        static_cast<unsigned long long>(cfg.measureCycles), kReps,
        sim::injectionEngineSimdPath(), idle_cycle.bestCyclesPerSec,
        idle_event.bestCyclesPerSec,
        static_cast<unsigned long long>(idle_event.wakeups), speedup,
        speedup >= 5.0 ? "ok" : "TOO SLOW",
        sat_cycle.bestCyclesPerSec, sat_event.bestCyclesPerSec);
    if (speedup < 5.0)
        pass = false;

    double baseline_sat = 0.0;
    if (const char *path = std::getenv("EBDA_SIM_BASELINE_JSON");
        path && *path) {
        baseline_sat = baselineSatCyclesPerSec(path);
        if (baseline_sat > 0) {
            const double floor = 0.90 * baseline_sat;
            std::printf("  baseline sat cycle %.0f cycles/s -> floor "
                        "%.0f (10%% regression gate): %s\n",
                        baseline_sat, floor,
                        sat_cycle.bestCyclesPerSec >= floor
                            ? "ok"
                            : "REGRESSED");
            if (sat_cycle.bestCyclesPerSec < floor)
                pass = false;
        }
    }

    std::ostringstream json;
    json << "{\"bench\":\"sched_mode\",\"network\":\"mesh16x16_vc2\""
         << ",\"router\":\"fig7b\""
         << ",\"measure_cycles\":" << cfg.measureCycles
         << ",\"reps\":" << kReps
         << ",\"simd_path\":\"" << sim::injectionEngineSimdPath()
         << "\""
         << ",\"idle_rate\":1e-05"
         << ",\"cycle_idle_cycles_per_sec\":"
         << idle_cycle.bestCyclesPerSec
         << ",\"event_idle_cycles_per_sec\":"
         << idle_event.bestCyclesPerSec
         << ",\"event_idle_wakeups\":" << idle_event.wakeups
         << ",\"idle_speedup\":" << speedup
         << ",\"sat_rate\":0.3"
         << ",\"cycle_sat_cycles_per_sec\":"
         << sat_cycle.bestCyclesPerSec
         << ",\"event_sat_cycles_per_sec\":"
         << sat_event.bestCyclesPerSec
         << ",\"baseline_sat_cycles_per_sec\":" << baseline_sat
         << ",\"pass\":" << (pass ? "true" : "false") << "}";

    std::cout << "\nSCHED_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_SCHED_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    return pass ? 0 : 1;
}

} // namespace
} // namespace ebda

int
main()
{
    return ebda::benchMain();
}
