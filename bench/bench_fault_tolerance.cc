/**
 * @file
 * Theorem-2 note reproduction: "Enabling U-turns is essentially
 * important in fault-tolerant designs or where rerouting brings an
 * advantage". The bench injects random bidirectional link faults into
 * an 8x8 mesh and measures, for the fully adaptive EbDa scheme in
 * shortest-state mode, the fraction of (src, dest) pairs still
 * routable with the full Theorem-1/2/3 turn set versus the same scheme
 * with every U-/I-turn removed. Deadlock freedom is oracle-checked for
 * every faulty instance.
 */

#include "common.hh"

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/random.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

double
routableFraction(const routing::EbDaRouting &r, const topo::Network &net)
{
    std::size_t ok = 0;
    std::size_t pairs = 0;
    for (topo::NodeId s = 0; s < net.numNodes(); ++s) {
        for (topo::NodeId d = 0; d < net.numNodes(); ++d) {
            if (s == d)
                continue;
            ++pairs;
            if (!r.candidates(cdg::kInjectionChannel, s, s, d).empty())
                ++ok;
        }
    }
    return static_cast<double>(ok) / static_cast<double>(pairs);
}

void
reproduce()
{
    bench::banner("Fault tolerance: routable pairs vs injected link "
                  "faults (8x8 mesh, Fig 7(b) scheme, shortest-state)");

    const auto base = topo::Network::mesh({8, 8}, {1, 2});
    core::TurnExtractionOptions no_ui;
    no_ui.theorem2 = false;
    no_ui.crossUITurns = false;

    TextTable t;
    t.setHeader({"failed links", "routable (with U/I turns)",
                 "routable (90-degree only)", "deadlock-free"});

    Rng rng(20170624);
    for (const int faults : {0, 1, 2, 4, 8}) {
        double with_ui = 0.0;
        double without_ui = 0.0;
        bool all_deadlock_free = true;
        const int trials = faults == 0 ? 1 : 5;
        for (int trial = 0; trial < trials; ++trial) {
            std::vector<std::pair<topo::NodeId, topo::NodeId>> failed;
            for (int f = 0; f < faults; ++f) {
                const auto l = static_cast<topo::LinkId>(
                    rng.nextBounded(base.numLinks()));
                failed.emplace_back(base.link(l).src, base.link(l).dst);
                failed.emplace_back(base.link(l).dst, base.link(l).src);
            }
            const auto net = base.withoutLinks(failed);
            const routing::EbDaRouting full(
                net, core::schemeFig7b(), {},
                routing::EbDaRouting::Mode::ShortestState);
            const routing::EbDaRouting restricted(
                net, core::schemeFig7b(), no_ui,
                routing::EbDaRouting::Mode::ShortestState);
            with_ui += routableFraction(full, net);
            without_ui += routableFraction(restricted, net);
            all_deadlock_free &=
                cdg::checkDeadlockFree(full).deadlockFree;
        }
        t.addRow({TextTable::num(faults),
                  TextTable::num(with_ui / trials, 4),
                  TextTable::num(without_ui / trials, 4),
                  all_deadlock_free ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "expected shape: coverage degrades gracefully with "
                 "faults and the turn restriction costs nothing in "
                 "coverage on a mesh (the rich 90-degree set reroutes); "
                 "deadlock safety holds for every fault pattern\n";

    bench::banner("Where U-turns pay: torus wrap shortcuts (8x8 torus)");
    const auto torus = topo::Network::torus({8, 8}, {2, 2});
    core::PartitionScheme scheme;
    scheme.add(core::Partition({core::makeClass(1, core::Sign::Pos, 0),
                                core::makeClass(1, core::Sign::Neg, 0),
                                core::makeClass(0, core::Sign::Pos, 0)}));
    scheme.add(core::Partition({core::makeClass(1, core::Sign::Pos, 1),
                                core::makeClass(1, core::Sign::Neg, 1),
                                core::makeClass(0, core::Sign::Neg, 0)}));
    scheme.add(core::Partition({core::makeClass(0, core::Sign::Pos, 1),
                                core::makeClass(0, core::Sign::Neg, 1)}));

    auto avg_len = [&](const routing::EbDaRouting &r) {
        double sum = 0.0;
        std::size_t pairs = 0;
        for (topo::NodeId s = 0; s < torus.numNodes(); ++s) {
            for (topo::NodeId d = 0; d < torus.numNodes(); ++d) {
                if (s == d)
                    continue;
                std::uint32_t best = UINT32_MAX;
                for (topo::ChannelId c :
                     r.candidates(cdg::kInjectionChannel, s, s, d)) {
                    best = std::min(best, r.stateDistance(c, d));
                }
                if (best != UINT32_MAX) {
                    sum += best;
                    ++pairs;
                }
            }
        }
        return pairs ? sum / static_cast<double>(pairs) : 0.0;
    };
    const routing::EbDaRouting with_ui(
        torus, scheme, {}, routing::EbDaRouting::Mode::ShortestState);
    const routing::EbDaRouting without_ui(
        torus, scheme, no_ui, routing::EbDaRouting::Mode::ShortestState);
    std::cout << "avg route length with U-turns (wraps usable):    "
              << TextTable::num(avg_len(with_ui), 3)
              << " hops\navg route length without U-turns (mesh-like): "
              << TextTable::num(avg_len(without_ui), 3)
              << " hops\n(torus-minimal average is 4.06, mesh-minimal "
                 "5.33 on 8x8 — wrap traversals ARE Theorem-2 U-turns)\n";

    // Dynamic counterpart of the static-coverage table above: instead
    // of rebuilding the network without links, kill them mid-run via a
    // FaultPlan and measure what the recovery machinery (reroute +
    // source retransmit + watchdog escalation) actually delivers.
    bench::banner("Dynamic delivery under runtime link faults "
                  "(6x6 mesh, rate 0.08, faults at cycle 1000+)");

    const std::vector<int> dims_dyn{6, 6};
    TextTable dyn;
    dyn.setHeader({"failed links", "delivered", "lost", "retransmits",
                   "recoveries", "oracle clean", "wedged"});
    for (const int faults : {0, 1, 2, 4}) {
        const auto net = topo::Network::mesh(dims_dyn, {1, 2});
        const routing::EbDaRouting full(
            net, core::schemeFig7b(), {},
            routing::EbDaRouting::Mode::ShortestState);
        sim::SimConfig cfg;
        cfg.injectionRate = 0.08;
        cfg.warmupCycles = 500;
        cfg.measureCycles = 4000;
        cfg.drainCycles = 20000;
        cfg.watchdogCycles = 2000;
        cfg.faults.randomLinkFaults = faults;
        cfg.faults.seed = 20170624;
        cfg.faults.firstCycle = 1000;
        cfg.faults.spacing = 700;
        const sim::TrafficGenerator gen(net,
                                        sim::TrafficPattern::Uniform);
        const auto r = sim::runSimulation(net, full, gen, cfg);
        dyn.addRow({TextTable::num(faults),
                    TextTable::num(r.deliveredFraction, 4),
                    TextTable::num(r.packetsLost),
                    TextTable::num(r.packetsRetransmitted),
                    TextTable::num(r.recoveryPasses),
                    TextTable::num(r.faultChecksClean) + "/"
                        + TextTable::num(r.faultChecks),
                    r.degradedGracefully ? "no" : "YES"});
    }
    dyn.print(std::cout);
    std::cout << "expected shape: delivery stays near 1.0 and every "
                 "degraded-CDG oracle check is clean — the full "
                 "Theorem-1/2/3 turn set absorbs runtime faults "
                 "without wedging\n";
}

void
bmFaultyReroutingSetup(benchmark::State &state)
{
    const auto base = topo::Network::mesh({8, 8}, {1, 2});
    const auto net = base.withoutLinks(
        {{base.node({3, 3}), base.node({4, 3})},
         {base.node({4, 3}), base.node({3, 3})}});
    for (auto _ : state) {
        routing::EbDaRouting r(net, core::schemeFig7b(), {},
                               routing::EbDaRouting::Mode::ShortestState);
        // Force one distance-table build.
        auto c = r.candidates(cdg::kInjectionChannel, 0, 0,
                              static_cast<topo::NodeId>(
                                  net.numNodes() - 1));
        benchmark::DoNotOptimize(c);
    }
}
BENCHMARK(bmFaultyReroutingSetup);

} // namespace

EBDA_BENCH_MAIN(reproduce)
