/**
 * @file
 * Scaling study: the Mendlovic-Matias fixpoint checker vs the Dally
 * relation-CDG oracle, wall-clock, across mesh/torus/dragonfly/
 * full-mesh sizes. The CDG oracle walks channel dependencies; the MM
 * checker iterates a release fixpoint over reachable routing states —
 * this bench quantifies what the exactness of MM costs (and verifies
 * the two verdicts agree at every size).
 *
 * Machine-readable output: the JSON summary is printed to stdout and,
 * when EBDA_CHECKER_BENCH_JSON is set, written to that path (same
 * convention as bench_route_compute's BENCH_sim.json feed).
 */

#include "common.hh"

#include <chrono>
#include <sstream>

#include "cdg/mm_check.hh"
#include "cdg/relation_cdg.hh"
#include "sweep/router_factory.hh"
#include "topo/network.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

struct Config
{
    std::string label;
    std::string router;
    topo::Network net;
};

std::vector<Config>
configs()
{
    std::vector<Config> out;
    for (int k : {8, 16, 24})
        out.push_back({"mesh " + std::to_string(k) + "x"
                           + std::to_string(k),
                       "xy", topo::Network::mesh({k, k}, {1, 1})});
    out.push_back(
        {"torus 8x8", "updown", topo::Network::torus({8, 8}, {2, 2})});
    out.push_back({"dragonfly(4,2,2)", "dragonfly-min",
                   topo::Network::dragonfly(4, 2, 2)});
    out.push_back({"dragonfly(6,3,3)", "dragonfly-min",
                   topo::Network::dragonfly(6, 3, 3)});
    out.push_back({"fullmesh 16", "fullmesh-2hop",
                   topo::Network::fullMesh(16)});
    return out;
}

double
secondsOf(const std::function<void()> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
reproduce()
{
    bench::banner("checker scaling: Mendlovic-Matias fixpoint vs Dally "
                  "relation-CDG oracle");

    TextTable t;
    t.setHeader({"network", "router", "channels", "deps", "states",
                 "dally", "mm", "mm/dally", "agree"});

    std::ostringstream json;
    json << "{\"bench\":\"checker_scaling\",\"rows\":[";
    bool pass = true;
    bool first = true;
    for (const auto &cfg : configs()) {
        std::string err;
        const auto router = sweep::makeRouter(cfg.net, cfg.router, &err);
        if (!router) {
            std::cout << "SKIP " << cfg.label << ": " << err << '\n';
            pass = false;
            continue;
        }
        cdg::CdgReport dally;
        cdg::MmReport mm;
        const double dally_s =
            secondsOf([&] { dally = cdg::checkDeadlockFree(*router); });
        const double mm_s =
            secondsOf([&] { mm = cdg::checkMendlovicMatias(*router); });
        const bool agree = dally.deadlockFree == mm.deadlockFree;
        pass = pass && agree && mm.deadlockFree;
        t.addRow({cfg.label, cfg.router,
                  TextTable::num(dally.numChannels),
                  TextTable::num(dally.numDependencies),
                  TextTable::num(mm.numStates),
                  TextTable::num(dally_s * 1e3, 2) + " ms",
                  TextTable::num(mm_s * 1e3, 2) + " ms",
                  TextTable::num(dally_s > 0.0 ? mm_s / dally_s : 0.0, 2)
                      + "x",
                  agree ? "yes" : "NO"});
        json << (first ? "" : ",") << "{\"network\":\"" << cfg.label
             << "\",\"router\":\"" << cfg.router
             << "\",\"channels\":" << dally.numChannels
             << ",\"dependencies\":" << dally.numDependencies
             << ",\"states\":" << mm.numStates
             << ",\"dally_ms\":" << dally_s * 1e3
             << ",\"mm_ms\":" << mm_s * 1e3
             << ",\"deadlock_free\":"
             << (mm.deadlockFree ? "true" : "false")
             << ",\"agree\":" << (agree ? "true" : "false") << "}";
        first = false;
    }
    json << "],\"pass\":" << (pass ? "true" : "false") << "}";

    t.print(std::cout);
    std::cout << "takeaway: MM examines per-destination routing states "
                 "where the CDG collapses them into channel edges; the "
                 "exact verdict costs a bounded constant factor, not an "
                 "asymptotic blowup\n";
    std::cout << "\nCHECKER_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_CHECKER_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    if (!pass)
        std::cout << "UNEXPECTED checker disagreement or deadlock "
                     "verdict above\n";
}

void
bmDallyMesh(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const auto net = topo::Network::mesh({k, k}, {1, 1});
    const auto router = sweep::makeRouter(net, "xy");
    for (auto _ : state) {
        auto report = cdg::checkDeadlockFree(*router);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmDallyMesh)->Arg(8)->Arg(16)->Arg(24);

void
bmMmMesh(benchmark::State &state)
{
    const int k = static_cast<int>(state.range(0));
    const auto net = topo::Network::mesh({k, k}, {1, 1});
    const auto router = sweep::makeRouter(net, "xy");
    for (auto _ : state) {
        auto report = cdg::checkMendlovicMatias(*router);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmMmMesh)->Arg(8)->Arg(16)->Arg(24);

void
bmDallyDragonfly(benchmark::State &state)
{
    const int a = static_cast<int>(state.range(0));
    const auto net = topo::Network::dragonfly(a, a / 2, a / 2);
    const auto router = sweep::makeRouter(net, "dragonfly-min");
    for (auto _ : state) {
        auto report = cdg::checkDeadlockFree(*router);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmDallyDragonfly)->Arg(4)->Arg(6);

void
bmMmDragonfly(benchmark::State &state)
{
    const int a = static_cast<int>(state.range(0));
    const auto net = topo::Network::dragonfly(a, a / 2, a / 2);
    const auto router = sweep::makeRouter(net, "dragonfly-min");
    for (auto _ : state) {
        auto report = cdg::checkMendlovicMatias(*router);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmMmDragonfly)->Arg(4)->Arg(6);

} // namespace

EBDA_BENCH_MAIN(reproduce)
