/**
 * @file
 * Table 3 reproduction: four-partition (deterministic) options. The six
 * listed orderings are enumerated among the 24 singleton-partition
 * schemes, each is verified deadlock-free, and the XY/YX entries are
 * classified back to the classical algorithms. Deterministic routing
 * scores exactly one allowed minimal path per pair.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/enumerate.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

void
reproduce()
{
    bench::banner("Table 3: four-partition deterministic options");

    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const std::vector<std::string> paper = {
        "{X+} -> {Y+} -> {X-} -> {Y-}", "{X+} -> {Y-} -> {X-} -> {Y+}",
        "{X-} -> {Y+} -> {X+} -> {Y-}", "{X-} -> {Y-} -> {X+} -> {Y+}",
        "{X+} -> {X-} -> {Y+} -> {Y-}", "{Y+} -> {Y-} -> {X+} -> {X-}",
    };

    core::EnumerationOptions opts;
    opts.exactPartitions = 4;
    const auto schemes = core::enumerateSchemes(core::classes2d(), opts);

    TextTable t;
    t.setHeader({"paper option", "enumerated", "deadlock-free",
                 "classified", "paths/pair"});
    for (const auto &entry : paper) {
        const core::PartitionScheme *match = nullptr;
        for (const auto &s : schemes)
            if (s.toString(false) == entry)
                match = &s;
        if (!match) {
            t.addRow({entry, "MISSING", "-", "-", "-"});
            continue;
        }
        const auto verdict = cdg::checkDeadlockFree(net, *match);
        const auto adapt = cdg::measureAdaptiveness(net, *match);
        const double pairs = static_cast<double>(net.numNodes())
            * (static_cast<double>(net.numNodes()) - 1);
        t.addRow({entry, "yes", verdict.deadlockFree ? "yes" : "NO",
                  core::classify2dScheme(*match).value_or("-"),
                  TextTable::num(adapt.allowedPaths / pairs, 3)});
    }
    t.print(std::cout);

    std::size_t deadlock_free = 0;
    std::size_t connected = 0;
    for (const auto &s : schemes) {
        if (cdg::checkDeadlockFree(net, s).deadlockFree)
            ++deadlock_free;
        if (!cdg::measureAdaptiveness(net, s).disconnectedMinimal)
            ++connected;
    }
    std::cout << "all " << schemes.size()
              << " orderings of singleton partitions: " << deadlock_free
              << " deadlock-free, " << connected
              << " minimally connected\n";
    std::cout << "paper: transitions between singleton partitions yield "
                 "deterministic algorithms (e.g. XY, YX)\n";
}

void
bmVerifyDeterministic(benchmark::State &state)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto scheme = core::schemeFig6P1();
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmVerifyDeterministic);

} // namespace

EBDA_BENCH_MAIN(reproduce)
