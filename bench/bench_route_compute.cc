/**
 * @file
 * Microbenchmark for the route-table compiler (src/routing/route_table):
 * compiled-table lookups vs virtual-dispatch route compute on the
 * benches' standard 8x8, 2-VC mesh, plus a fixed latency-sweep point
 * timed with the table on and off.
 *
 * This binary is also a correctness smoke test and exits non-zero when
 *  - any table lookup differs from the virtual relation on a reachable
 *    state (contents or order), or
 *  - the compiled-table query loop performs a single heap allocation
 *    (the whole point of the table is a zero-allocation steady state;
 *    a global operator new/delete hook below counts every allocation
 *    in the process).
 *
 * Machine-readable output: the JSON summary is printed to stdout and,
 * when EBDA_ROUTE_BENCH_JSON is set, written to that path (CI uploads
 * it as an artifact; scripts/perf_baseline.sh commits it as
 * BENCH_sim.json).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "cdg/routing_relation.hh"
#include "routing/route_table.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"

namespace {

/** @name Global allocation hook
 *  Counts every operator new in the process; the table-path timing
 *  loop must leave it untouched.
 *  @{ */
std::uint64_t g_allocs = 0;

void *
countedAlloc(std::size_t size)
{
    ++g_allocs;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
/** @} */

namespace ebda {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One reachable route-compute query. */
struct State
{
    topo::ChannelId in;
    topo::NodeId at;
    topo::NodeId src;
    topo::NodeId dest;
};

/** Every reachable (in, src, dest) state, by the same BFS-from-
 *  injection closure the table compiler probes. */
std::vector<State>
reachableStates(const cdg::RoutingRelation &rel)
{
    const topo::Network &net = rel.network();
    std::vector<State> out;
    std::vector<std::uint8_t> seen;
    std::vector<topo::ChannelId> frontier;
    for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
        for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
            if (dest == src)
                continue;
            seen.assign(net.numChannels(), 0);
            frontier.clear();
            out.push_back({cdg::kInjectionChannel, src, src, dest});
            for (const topo::ChannelId c :
                 rel.candidates(cdg::kInjectionChannel, src, src, dest)) {
                if (!seen[c]) {
                    seen[c] = 1;
                    frontier.push_back(c);
                }
            }
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                const topo::ChannelId in = frontier[i];
                const topo::NodeId at = net.link(net.linkOf(in)).dst;
                if (at == dest)
                    continue;
                out.push_back({in, at, src, dest});
                for (const topo::ChannelId c :
                     rel.candidates(in, at, src, dest)) {
                    if (!seen[c]) {
                        seen[c] = 1;
                        frontier.push_back(c);
                    }
                }
            }
        }
    }
    return out;
}

struct RelationRow
{
    std::string spec;
    std::size_t states = 0;
    bool perSource = false;
    std::uint64_t tableBytes = 0;
    double virtualNsPerCall = 0.0;
    double tableNsPerCall = 0.0;
    double speedup = 0.0;
    std::uint64_t tableAllocs = 0;
    bool match = true;
};

RelationRow
benchRelation(const topo::Network &net, const std::string &spec)
{
    RelationRow row;
    row.spec = spec;
    std::string err;
    const auto rel = sweep::makeRouter(net, spec, &err);
    if (!rel) {
        std::cerr << "makeRouter(" << spec << ") failed: " << err
                  << '\n';
        row.match = false;
        return row;
    }
    const routing::RouteTable table(*rel);
    if (!table.compiled()) {
        std::cerr << spec << ": table fell back to the virtual path\n";
        row.match = false;
        return row;
    }
    row.perSource = table.perSource();
    row.tableBytes = table.tableBytes();

    const auto states = reachableStates(*rel);
    row.states = states.size();

    // Correctness first: every reachable state, contents and order.
    std::vector<topo::ChannelId> scratch;
    for (const State &s : states) {
        const auto want = rel->candidates(s.in, s.at, s.src, s.dest);
        const auto got =
            table.candidatesView(s.in, s.at, s.src, s.dest, scratch);
        if (got.size() != want.size()
            || !std::equal(want.begin(), want.end(), got.begin())) {
            std::cerr << spec << ": table/virtual mismatch at in="
                      << s.in << " src=" << s.src << " dest=" << s.dest
                      << '\n';
            row.match = false;
            return row;
        }
    }

    // `sink` defeats dead-code elimination of the timed loops.
    std::uint64_t sink = 0;

    const std::size_t virtualReps =
        std::max<std::size_t>(1, 400'000 / states.size());
    const auto tv0 = Clock::now();
    for (std::size_t r = 0; r < virtualReps; ++r)
        for (const State &s : states) {
            const auto cand =
                rel->candidates(s.in, s.at, s.src, s.dest);
            sink += cand.size();
        }
    row.virtualNsPerCall = secondsSince(tv0) * 1e9
        / static_cast<double>(virtualReps * states.size());

    const std::size_t tableReps =
        std::max<std::size_t>(1, 8'000'000 / states.size());
    const std::uint64_t allocsBefore = g_allocs;
    const auto tt0 = Clock::now();
    for (std::size_t r = 0; r < tableReps; ++r)
        for (const State &s : states) {
            const auto cand =
                table.candidatesView(s.in, s.at, s.src, s.dest, scratch);
            sink += cand.size();
        }
    row.tableNsPerCall = secondsSince(tt0) * 1e9
        / static_cast<double>(tableReps * states.size());
    row.tableAllocs = g_allocs - allocsBefore;
    row.speedup = row.virtualNsPerCall / row.tableNsPerCall;

    if (sink == 0)
        std::cerr << "(unexpected empty candidate sets)\n";
    return row;
}

struct SweepRow
{
    std::uint64_t cycles = 0;
    std::uint64_t routeCalls = 0;
    double tableCyclesPerSec = 0.0;
    double virtualCyclesPerSec = 0.0;
    bool callsMatch = true;
};

/** A fixed latency-sweep point (8x8 mesh, fig7b, uniform, 0.10
 *  flits/node/cycle) timed end to end with the table on and off. */
SweepRow
benchSweepPoint(const topo::Network &net)
{
    SweepRow row;
    const auto rel = sweep::makeRouter(net, "fig7b");
    if (!rel) {
        row.callsMatch = false;
        return row;
    }
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.10;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 5000;
    cfg.drainCycles = 50000;
    cfg.watchdogCycles = 5000;
    cfg.seed = 2024;

    cfg.routeTable = true;
    const auto t0 = Clock::now();
    const auto onTable = sim::runSimulation(net, *rel, gen, cfg);
    const double tableSec = secondsSince(t0);

    cfg.routeTable = false;
    const auto t1 = Clock::now();
    const auto onVirtual = sim::runSimulation(net, *rel, gen, cfg);
    const double virtualSec = secondsSince(t1);

    row.cycles = onTable.cycles;
    row.routeCalls = onTable.routeComputeCalls;
    row.tableCyclesPerSec =
        static_cast<double>(onTable.cycles) / tableSec;
    row.virtualCyclesPerSec =
        static_cast<double>(onVirtual.cycles) / virtualSec;
    row.callsMatch =
        onTable.routeComputeCalls == onVirtual.routeComputeCalls
        && onTable.cycles == onVirtual.cycles;
    return row;
}

int
benchMain()
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const char *specs[] = {"xy", "odd-even", "fig7b"};

    std::vector<RelationRow> rows;
    bool pass = true;
    std::printf("route compute on mesh 8x8, 2 VCs/dim (%zu channels)\n",
                static_cast<std::size_t>(net.numChannels()));
    std::printf("%-10s %8s %10s %12s %12s %8s %7s\n", "router",
                "states", "bytes", "virtual", "table", "speedup",
                "allocs");
    for (const char *spec : specs) {
        rows.push_back(benchRelation(net, spec));
        const RelationRow &r = rows.back();
        pass = pass && r.match && r.tableAllocs == 0;
        std::printf(
            "%-10s %8zu %10llu %9.1f ns %9.1f ns %7.1fx %7llu%s\n",
            r.spec.c_str(), r.states,
            static_cast<unsigned long long>(r.tableBytes),
            r.virtualNsPerCall, r.tableNsPerCall, r.speedup,
            static_cast<unsigned long long>(r.tableAllocs),
            r.match ? "" : "  MISMATCH");
    }

    const SweepRow sweep = benchSweepPoint(net);
    pass = pass && sweep.callsMatch;
    std::printf("\nlatency point (fig7b, uniform 0.10): "
                "%.0f cycles/s table, %.0f cycles/s virtual "
                "(%llu cycles, %llu route calls)%s\n",
                sweep.tableCyclesPerSec, sweep.virtualCyclesPerSec,
                static_cast<unsigned long long>(sweep.cycles),
                static_cast<unsigned long long>(sweep.routeCalls),
                sweep.callsMatch ? "" : "  RESULT DIVERGED");

    std::ostringstream json;
    json << "{\"bench\":\"route_compute\","
         << "\"network\":\"mesh8x8_vc2\",\"relations\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RelationRow &r = rows[i];
        json << (i ? "," : "") << "{\"spec\":\"" << r.spec << "\""
             << ",\"states\":" << r.states
             << ",\"per_source\":" << (r.perSource ? "true" : "false")
             << ",\"table_bytes\":" << r.tableBytes
             << ",\"virtual_ns_per_call\":" << r.virtualNsPerCall
             << ",\"table_ns_per_call\":" << r.tableNsPerCall
             << ",\"speedup\":" << r.speedup
             << ",\"table_allocs\":" << r.tableAllocs
             << ",\"match\":" << (r.match ? "true" : "false") << "}";
    }
    json << "],\"sweep\":{\"router\":\"fig7b\",\"cycles\":"
         << sweep.cycles << ",\"route_calls\":" << sweep.routeCalls
         << ",\"table_cycles_per_sec\":" << sweep.tableCyclesPerSec
         << ",\"virtual_cycles_per_sec\":" << sweep.virtualCyclesPerSec
         << "},\"pass\":" << (pass ? "true" : "false") << "}";

    std::cout << "\nROUTE_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_ROUTE_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    return pass ? 0 : 1;
}

} // namespace
} // namespace ebda

int
main()
{
    return ebda::benchMain();
}
