/**
 * @file
 * Evaluation: saturation throughput (accepted flits/node/cycle at an
 * offered load beyond saturation) per traffic pattern and router on an
 * 8x8 mesh. Complements bench_sim_latency with the capacity view: who
 * wins under which pattern, with the EbDa fully adaptive designs
 * needing no escape channels.
 */

#include "common.hh"

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

double
saturationThroughput(const topo::Network &net,
                     const cdg::RoutingRelation &r,
                     sim::TrafficPattern pattern)
{
    const sim::TrafficGenerator gen(net, pattern);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.9; // far beyond capacity
    cfg.warmupCycles = 2500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 0;
    cfg.watchdogCycles = 6000;
    cfg.seed = 2017;
    const auto result = sim::runSimulation(net, r, gen, cfg);
    return result.deadlocked ? -1.0 : result.acceptedRate;
}

void
reproduce()
{
    bench::banner("8x8 mesh: saturation throughput (accepted "
                  "flits/node/cycle at offered 0.9)");

    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const routing::OddEvenRouting oe(net);
    const routing::NegativeFirstRouting nf(net);
    const routing::EbDaRouting fa_min(net, core::schemeFig7b());
    const routing::EbDaRouting fa_region(net, core::regionScheme(2));

    const std::vector<const cdg::RoutingRelation *> routers = {
        &xy, &oe, &nf, &fa_min, &fa_region};
    const std::vector<sim::TrafficPattern> patterns = {
        sim::TrafficPattern::Uniform,   sim::TrafficPattern::Transpose,
        sim::TrafficPattern::BitComplement,
        sim::TrafficPattern::Shuffle,   sim::TrafficPattern::Tornado,
        sim::TrafficPattern::Hotspot};

    TextTable t;
    std::vector<std::string> header = {"pattern"};
    for (const auto *r : routers)
        header.push_back(r->name().substr(0, 24));
    t.setHeader(header);

    for (const auto pattern : patterns) {
        std::vector<std::string> row = {sim::toString(pattern)};
        for (const auto *r : routers) {
            const double thr = saturationThroughput(net, *r, pattern);
            row.push_back(thr < 0 ? "DEADLOCK" : TextTable::num(thr, 3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::cout << "expected shape: XY leads on uniform (optimal load "
                 "spread for DOR); adaptive routers lead on transpose/"
                 "shuffle-style adversarial patterns; nobody deadlocks\n";
}

void
bmSaturationPoint(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.injectionRate = 0.9;
        cfg.warmupCycles = 300;
        cfg.measureCycles = 600;
        cfg.drainCycles = 0;
        auto result = sim::runSimulation(net, xy, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSaturationPoint)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
