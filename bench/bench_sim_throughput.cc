/**
 * @file
 * Evaluation: saturation throughput (accepted flits/node/cycle at an
 * offered load beyond saturation) per traffic pattern and router on an
 * 8x8 mesh. Complements bench_sim_latency with the capacity view: who
 * wins under which pattern, with the EbDa fully adaptive designs
 * needing no escape channels.
 *
 * The pattern x router grid runs concurrently on the sweep engine;
 * EBDA_SWEEP_CACHE / EBDA_SWEEP_JSONL are honoured (common.hh).
 */

#include "common.hh"

#include "sim/simulator.hh"
#include "util/table.hh"

#include "routing/baselines.hh"

namespace {

using namespace ebda;

struct RouterCase
{
    const char *spec;
    const char *label;
};

const std::vector<RouterCase> kRouters = {
    {"xy", "XY-DOR"},
    {"odd-even", "Odd-Even"},
    {"negative-first", "Negative-First"},
    {"fig7b", "EbDa Fig7(b)"},
    {"region:2", "EbDa Region"},
};

const std::vector<sim::TrafficPattern> kPatterns = {
    sim::TrafficPattern::Uniform,       sim::TrafficPattern::Transpose,
    sim::TrafficPattern::BitComplement, sim::TrafficPattern::Shuffle,
    sim::TrafficPattern::Tornado,       sim::TrafficPattern::Hotspot};

sim::SimConfig
saturationConfig()
{
    sim::SimConfig cfg;
    cfg.injectionRate = 0.9; // far beyond capacity
    cfg.warmupCycles = 2500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 0;
    cfg.watchdogCycles = 6000;
    cfg.seed = 2017;
    return cfg;
}

void
reproduce()
{
    bench::banner("8x8 mesh: saturation throughput (accepted "
                  "flits/node/cycle at offered 0.9)");

    std::vector<sweep::SweepJob> jobs;
    for (const auto pattern : kPatterns)
        for (const auto &r : kRouters)
            jobs.push_back(
                bench::meshJob(r.spec, pattern, saturationConfig()));

    const auto report = bench::runJobs(jobs);

    TextTable t;
    std::vector<std::string> header = {"pattern"};
    for (const auto &r : kRouters)
        header.push_back(r.label);
    t.setHeader(header);

    for (std::size_t pi = 0; pi < kPatterns.size(); ++pi) {
        std::vector<std::string> row = {sim::toString(kPatterns[pi])};
        for (std::size_t ci = 0; ci < kRouters.size(); ++ci) {
            const auto &o = report.outcomes[pi * kRouters.size() + ci];
            if (!o.ok)
                row.push_back("ERROR");
            else if (o.result.deadlocked)
                row.push_back("DEADLOCK");
            else
                row.push_back(TextTable::num(o.result.acceptedRate, 3));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);

    // Non-mesh fabrics (ROADMAP item 3): saturation capacity of the
    // dragonfly(4,2,2) and fullMesh(8) fabrics under the two patterns
    // defined on any topology (both purely RNG-driven).
    struct FabricCase
    {
        const char *label;
        bool dragonfly; // else fullMesh(8)
        const char *router;
    };
    const std::vector<FabricCase> fabrics = {
        {"dragonfly(4,2,2) minimal", true, "dragonfly-min"},
        {"dragonfly(4,2,2) up*/down*", true, "updown"},
        {"fullMesh(8) 2-hop adaptive", false, "fullmesh-2hop"},
        {"fullMesh(8) up*/down*", false, "updown"},
    };
    const std::vector<sim::TrafficPattern> fabric_patterns = {
        sim::TrafficPattern::Uniform, sim::TrafficPattern::Hotspot};

    std::vector<sweep::SweepJob> fjobs;
    for (const auto &f : fabrics)
        for (const auto pattern : fabric_patterns)
            fjobs.push_back(
                f.dragonfly
                    ? bench::dragonflyJob(f.router, pattern,
                                          saturationConfig())
                    : bench::fullMeshJob(f.router, pattern,
                                         saturationConfig()));
    const auto freport = bench::runJobs(fjobs);

    bench::banner("non-mesh fabrics: saturation throughput (accepted "
                  "flits/node/cycle at offered 0.9)");
    TextTable ft;
    ft.setHeader({"fabric / router", "uniform", "hotspot"});
    for (std::size_t fi = 0; fi < fabrics.size(); ++fi) {
        std::vector<std::string> row = {fabrics[fi].label};
        for (std::size_t pi = 0; pi < fabric_patterns.size(); ++pi) {
            const auto &o =
                freport.outcomes[fi * fabric_patterns.size() + pi];
            if (!o.ok)
                row.push_back("ERROR");
            else if (o.result.deadlocked)
                row.push_back("DEADLOCK");
            else
                row.push_back(TextTable::num(o.result.acceptedRate, 3));
        }
        ft.addRow(std::move(row));
    }
    ft.print(std::cout);

    std::cout << "[sweep: " << jobs.size() + fjobs.size() << " jobs, "
              << report.threads
              << " threads, " << report.simulated << " simulated, "
              << report.cacheHits << " cache hits, "
              << TextTable::num(report.cacheBlockedSeconds, 3)
              << " s cache-blocked, "
              << TextTable::num(report.elapsedSeconds, 2) << " s]\n";
    std::cout << "expected shape: XY leads on uniform (optimal load "
                 "spread for DOR); adaptive routers lead on transpose/"
                 "shuffle-style adversarial patterns; nobody deadlocks\n";
}

void
bmSaturationPoint(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        sim::SimConfig cfg;
        cfg.injectionRate = 0.9;
        cfg.warmupCycles = 300;
        cfg.measureCycles = 600;
        cfg.drainCycles = 0;
        auto result = sim::runSimulation(net, xy, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSaturationPoint)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
