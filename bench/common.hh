/**
 * @file
 * Shared scaffolding for the reproduction benches.
 *
 * Every bench binary does two jobs when run without arguments:
 *  1. print the reproduction of its paper table/figure (the rows the
 *     paper reports, plus our measured counterparts), then
 *  2. run its google-benchmark timings (registered with BENCHMARK()).
 * EXPERIMENTS.md records the printed output against the paper.
 */

#ifndef EBDA_BENCH_COMMON_HH
#define EBDA_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "sweep/runner.hh"

namespace ebda::bench {

/** Print a section banner for the reproduction output. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/**
 * Run a bench's simulation grid on the sweep engine: all cores,
 * results bit-identical to a serial loop. Environment overrides:
 *   EBDA_SWEEP_CACHE=<dir>   persist/reuse results across benches
 *                            and reruns (content-addressed);
 *   EBDA_SWEEP_JSONL=<file>  append machine-readable result rows.
 */
inline sweep::SweepReport
runJobs(const std::vector<sweep::SweepJob> &jobs,
        const sweep::RunOptions &base = {})
{
    sweep::RunOptions opts = base;
    std::unique_ptr<sweep::ResultCache> cache;
    if (const char *dir = std::getenv("EBDA_SWEEP_CACHE");
        dir && *dir) {
        cache = std::make_unique<sweep::ResultCache>(dir);
        opts.cache = cache.get();
    }
    auto report = sweep::runSweep(jobs, opts);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (!report.outcomes[i].ok)
            std::cerr << "sweep job failed (" << jobs[i].router
                      << "): " << report.outcomes[i].error << '\n';
    if (const char *path = std::getenv("EBDA_SWEEP_JSONL");
        path && *path) {
        std::ofstream out(path, std::ios::app);
        sweep::writeResultsJsonl(jobs, report.outcomes, out);
    }
    return report;
}

/** Grid point on an 8x8, 2-VC mesh (the benches' standard network). */
inline sweep::SweepJob
meshJob(const std::string &router, sim::TrafficPattern pattern,
        const sim::SimConfig &cfg, std::vector<int> dims = {8, 8},
        std::vector<int> vcs = {2, 2})
{
    sweep::SweepJob job;
    job.topo.kind = sweep::TopologySpec::Kind::Mesh;
    job.topo.dims = std::move(dims);
    job.topo.vcs = std::move(vcs);
    job.router = router;
    job.pattern = pattern;
    job.cfg = cfg;
    sweep::finalizeJob(job);
    return job;
}

/** Grid point on a dragonfly(a,p,h) fabric (default the ROADMAP's
 *  dragonfly(4,2,2)). */
inline sweep::SweepJob
dragonflyJob(const std::string &router, sim::TrafficPattern pattern,
             const sim::SimConfig &cfg, int a = 4, int p = 2, int h = 2)
{
    sweep::SweepJob job;
    job.topo.kind = sweep::TopologySpec::Kind::Dragonfly;
    job.topo.a = a;
    job.topo.p = p;
    job.topo.h = h;
    job.router = router;
    job.pattern = pattern;
    job.cfg = cfg;
    sweep::finalizeJob(job);
    return job;
}

/** Grid point on an n-node full mesh. */
inline sweep::SweepJob
fullMeshJob(const std::string &router, sim::TrafficPattern pattern,
            const sim::SimConfig &cfg, int nodes = 8)
{
    sweep::SweepJob job;
    job.topo.kind = sweep::TopologySpec::Kind::FullMesh;
    job.topo.nodes = nodes;
    job.router = router;
    job.pattern = pattern;
    job.cfg = cfg;
    sweep::finalizeJob(job);
    return job;
}

} // namespace ebda::bench

/** Define main(): print the reproduction, then run the timings. */
#define EBDA_BENCH_MAIN(print_fn) \
    int \
    main(int argc, char **argv) \
    { \
        print_fn(); \
        ::benchmark::Initialize(&argc, argv); \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1; \
        std::cout << "\n--- timings ---\n"; \
        ::benchmark::RunSpecifiedBenchmarks(); \
        return 0; \
    }

#endif // EBDA_BENCH_COMMON_HH
