/**
 * @file
 * Shared scaffolding for the reproduction benches.
 *
 * Every bench binary does two jobs when run without arguments:
 *  1. print the reproduction of its paper table/figure (the rows the
 *     paper reports, plus our measured counterparts), then
 *  2. run its google-benchmark timings (registered with BENCHMARK()).
 * EXPERIMENTS.md records the printed output against the paper.
 */

#ifndef EBDA_BENCH_COMMON_HH
#define EBDA_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

namespace ebda::bench {

/** Print a section banner for the reproduction output. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

} // namespace ebda::bench

/** Define main(): print the reproduction, then run the timings. */
#define EBDA_BENCH_MAIN(print_fn) \
    int \
    main(int argc, char **argv) \
    { \
        print_fn(); \
        ::benchmark::Initialize(&argc, argv); \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
            return 1; \
        std::cout << "\n--- timings ---\n"; \
        ::benchmark::RunSpecifiedBenchmarks(); \
        return 0; \
    }

#endif // EBDA_BENCH_COMMON_HH
