/**
 * @file
 * Evaluation: latency vs. offered load on an 8x8 mesh for the
 * EbDa-derived routers against the classical baselines, under uniform
 * and transpose traffic. This is the Booksim-style experiment backing
 * the paper's motivation (Sections 1-2): maximal adaptiveness without
 * escape channels is deadlock-free and improves load distribution; no
 * run may trip the deadlock watchdog.
 */

#include "common.hh"

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

sim::SimConfig
configFor(double rate)
{
    sim::SimConfig cfg;
    cfg.injectionRate = rate;
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 30000;
    cfg.watchdogCycles = 4000;
    cfg.vcDepth = 4;
    cfg.packetLength = 4;
    cfg.seed = 2017;
    return cfg;
}

void
sweep(const topo::Network &net, sim::TrafficPattern pattern)
{
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const routing::OddEvenRouting oe(net);
    const routing::WestFirstRouting wf(net);
    const routing::EbDaRouting fa_min(net, core::schemeFig7b());
    const routing::EbDaRouting fa_region(net, core::regionScheme(2));
    const routing::DuatoFullyAdaptive duato(net);

    const std::vector<std::pair<const cdg::RoutingRelation *, bool>>
        routers = {{&xy, false},      {&oe, false},
                   {&wf, false},      {&fa_min, false},
                   {&fa_region, false}, {&duato, true}};

    const sim::TrafficGenerator gen(net, pattern);

    TextTable t;
    std::vector<std::string> header = {"offered (flits/node/cyc)"};
    for (const auto &[r, atomic] : routers)
        header.push_back(r->name().substr(0, 24)
                         + (atomic ? " (atomic)" : ""));
    t.setHeader(header);

    for (double rate : {0.05, 0.15, 0.25, 0.35, 0.45}) {
        std::vector<std::string> row = {TextTable::num(rate, 2)};
        for (const auto &[r, atomic] : routers) {
            auto cfg = configFor(rate);
            cfg.atomicVcAllocation = atomic;
            const auto result = sim::runSimulation(net, *r, gen, cfg);
            if (result.deadlocked) {
                row.push_back("DEADLOCK");
            } else if (!result.drained) {
                row.push_back(">sat ("
                              + TextTable::num(result.acceptedRate, 2)
                              + ")");
            } else {
                row.push_back(TextTable::num(result.avgLatency, 1));
            }
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

void
reproduce()
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});

    bench::banner("8x8 mesh, uniform traffic: avg packet latency "
                  "(cycles) vs offered load");
    sweep(net, sim::TrafficPattern::Uniform);

    bench::banner("8x8 mesh, transpose traffic");
    sweep(net, sim::TrafficPattern::Transpose);

    std::cout << "\nexpected shape: adaptive routers track XY at low load "
                 "and saturate later under non-uniform traffic; no "
                 "configuration deadlocks\n";
}

void
bmSimCycle(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const routing::EbDaRouting fa(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        auto cfg = configFor(0.2);
        cfg.warmupCycles = 100;
        cfg.measureCycles = 400;
        cfg.drainCycles = 3000;
        auto result = sim::runSimulation(net, fa, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSimCycle)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
