/**
 * @file
 * Evaluation: latency vs. offered load on an 8x8 mesh for the
 * EbDa-derived routers against the classical baselines, under uniform
 * and transpose traffic. This is the Booksim-style experiment backing
 * the paper's motivation (Sections 1-2): maximal adaptiveness without
 * escape channels is deadlock-free and improves load distribution; no
 * run may trip the deadlock watchdog.
 *
 * The whole grid (router x pattern x rate) runs on the sweep engine:
 * all points execute concurrently across cores, and with
 * EBDA_SWEEP_CACHE set, reruns and overlapping benches reuse cached
 * results instead of re-simulating.
 */

#include "common.hh"

#include "sim/simulator.hh"
#include "util/table.hh"

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/ebda_routing.hh"

namespace {

using namespace ebda;

struct RouterCase
{
    const char *spec;
    const char *label;
    bool atomic;
};

const std::vector<RouterCase> kRouters = {
    {"xy", "XY-DOR", false},
    {"odd-even", "Odd-Even", false},
    {"west-first", "West-First", false},
    {"fig7b", "EbDa Fig7(b)", false},
    {"region:2", "EbDa Region", false},
    {"duato", "Duato-FA (atomic)", true},
};

const std::vector<double> kRates = {0.05, 0.15, 0.25, 0.35, 0.45};

sim::SimConfig
configFor(double rate)
{
    sim::SimConfig cfg;
    cfg.injectionRate = rate;
    cfg.warmupCycles = 1500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 30000;
    cfg.watchdogCycles = 4000;
    cfg.vcDepth = 4;
    cfg.packetLength = 4;
    cfg.seed = 2017;
    return cfg;
}

std::vector<sweep::SweepJob>
gridFor(sim::TrafficPattern pattern)
{
    std::vector<sweep::SweepJob> jobs;
    for (const double rate : kRates) {
        for (const auto &r : kRouters) {
            auto cfg = configFor(rate);
            cfg.atomicVcAllocation = r.atomic;
            jobs.push_back(bench::meshJob(r.spec, pattern, cfg));
        }
    }
    return jobs;
}

// Non-mesh fabrics (ROADMAP item 3): the same latency-vs-load view on
// the dragonfly(4,2,2) and fullMesh(8) fabrics the sweep engine can
// now express, pitting each fabric's deadlock-free minimal scheme
// against the generic up*/down* escape baseline.
struct FabricCase
{
    const char *label;
    bool dragonfly; // else fullMesh(8)
    const char *router;
};

const std::vector<FabricCase> kFabrics = {
    {"dfly min", true, "dragonfly-min"},
    {"dfly up/down", true, "updown"},
    {"fm8 2-hop", false, "fullmesh-2hop"},
    {"fm8 up/down", false, "updown"},
};

const std::vector<double> kFabricRates = {0.02, 0.06, 0.10, 0.14};

std::vector<sweep::SweepJob>
fabricGrid()
{
    std::vector<sweep::SweepJob> jobs;
    for (const double rate : kFabricRates)
        for (const auto &f : kFabrics) {
            const auto cfg = configFor(rate);
            jobs.push_back(
                f.dragonfly
                    ? bench::dragonflyJob(
                          f.router, sim::TrafficPattern::Uniform, cfg)
                    : bench::fullMeshJob(
                          f.router, sim::TrafficPattern::Uniform, cfg));
        }
    return jobs;
}

void
printFabricTable(const std::vector<sweep::JobOutcome> &outcomes)
{
    TextTable t;
    std::vector<std::string> header = {"offered (flits/node/cyc)"};
    for (const auto &f : kFabrics)
        header.push_back(f.label);
    t.setHeader(header);
    for (std::size_t ri = 0; ri < kFabricRates.size(); ++ri) {
        std::vector<std::string> row = {
            TextTable::num(kFabricRates[ri], 2)};
        for (std::size_t ci = 0; ci < kFabrics.size(); ++ci) {
            const auto &o = outcomes[ri * kFabrics.size() + ci];
            if (!o.ok)
                row.push_back("ERROR");
            else if (o.result.deadlocked)
                row.push_back("DEADLOCK");
            else if (!o.result.drained)
                row.push_back(">sat ("
                              + TextTable::num(o.result.acceptedRate, 2)
                              + ")");
            else
                row.push_back(TextTable::num(o.result.avgLatency, 1));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

void
printTable(const std::vector<sweep::SweepJob> &jobs,
           const std::vector<sweep::JobOutcome> &outcomes)
{
    TextTable t;
    std::vector<std::string> header = {"offered (flits/node/cyc)"};
    for (const auto &r : kRouters)
        header.push_back(r.label);
    t.setHeader(header);

    for (std::size_t ri = 0; ri < kRates.size(); ++ri) {
        std::vector<std::string> row = {TextTable::num(kRates[ri], 2)};
        for (std::size_t ci = 0; ci < kRouters.size(); ++ci) {
            const auto &o = outcomes[ri * kRouters.size() + ci];
            if (!o.ok) {
                row.push_back("ERROR");
            } else if (o.result.deadlocked) {
                row.push_back("DEADLOCK");
            } else if (!o.result.drained) {
                row.push_back(">sat ("
                              + TextTable::num(o.result.acceptedRate, 2)
                              + ")");
            } else {
                row.push_back(TextTable::num(o.result.avgLatency, 1));
            }
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    (void)jobs;
}

/**
 * Stall attribution at one offered load: which pipeline stage refused
 * flits, per router design. Percentages of that run's total stall
 * cycles, plus the hottest router's share of them.
 */
void
printStallTable(const std::vector<sweep::JobOutcome> &outcomes,
                std::size_t rate_index)
{
    TextTable t;
    t.setHeader({"router", "route-compute", "vc-starved",
                 "credit-starved", "switch-lost", "hottest node"});
    for (std::size_t ci = 0; ci < kRouters.size(); ++ci) {
        const auto &o = outcomes[rate_index * kRouters.size() + ci];
        if (!o.ok) {
            t.addRow({kRouters[ci].label, "ERROR", "-", "-", "-", "-"});
            continue;
        }
        const auto &r = o.result;
        const double total = static_cast<double>(
            r.stallRouteCompute + r.stallVcStarved + r.stallCreditStarved
            + r.stallSwitchLost);
        const auto pct = [&](std::uint64_t v) {
            return total == 0.0
                ? std::string("-")
                : TextTable::num(100.0 * static_cast<double>(v) / total, 1)
                    + " %";
        };
        t.addRow({kRouters[ci].label, pct(r.stallRouteCompute),
                  pct(r.stallVcStarved), pct(r.stallCreditStarved),
                  pct(r.stallSwitchLost),
                  "n" + std::to_string(r.hottestRouter) + " ("
                      + (total == 0.0
                             ? std::string("-")
                             : TextTable::num(
                                   100.0
                                       * static_cast<double>(
                                           r.hottestRouterStalls)
                                       / total,
                                   1)
                                   + " %")
                      + ")"});
    }
    t.print(std::cout);
}

void
reproduce()
{
    // One sweep covers both patterns so every grid point can run
    // concurrently; tables are then sliced out of the outcome vector.
    auto jobs = gridFor(sim::TrafficPattern::Uniform);
    const std::size_t per_pattern = jobs.size();
    auto transpose = gridFor(sim::TrafficPattern::Transpose);
    jobs.insert(jobs.end(),
                std::make_move_iterator(transpose.begin()),
                std::make_move_iterator(transpose.end()));
    auto fabrics = fabricGrid();
    jobs.insert(jobs.end(),
                std::make_move_iterator(fabrics.begin()),
                std::make_move_iterator(fabrics.end()));

    const auto report = bench::runJobs(jobs);

    bench::banner("8x8 mesh, uniform traffic: avg packet latency "
                  "(cycles) vs offered load");
    printTable(jobs,
               {report.outcomes.begin(),
                report.outcomes.begin()
                    + static_cast<std::ptrdiff_t>(per_pattern)});

    bench::banner("8x8 mesh, transpose traffic");
    printTable(jobs,
               {report.outcomes.begin()
                    + static_cast<std::ptrdiff_t>(per_pattern),
                report.outcomes.begin()
                    + static_cast<std::ptrdiff_t>(2 * per_pattern)});

    bench::banner("dragonfly(4,2,2) and fullMesh(8), uniform traffic: "
                  "avg packet latency (cycles) vs offered load");
    printFabricTable({report.outcomes.begin()
                          + static_cast<std::ptrdiff_t>(2 * per_pattern),
                      report.outcomes.end()});

    // Near saturation the stall mix separates the designs: escape-VC
    // routers starve on VCs, wide adaptive ones lose switch grants.
    const std::size_t near_sat = kRates.size() - 2; // 0.35
    bench::banner("Stall attribution @ "
                  + TextTable::num(kRates[near_sat], 2)
                  + " offered, uniform traffic");
    printStallTable({report.outcomes.begin(),
                     report.outcomes.begin()
                         + static_cast<std::ptrdiff_t>(per_pattern)},
                    near_sat);

    std::cout << "\n[sweep: " << jobs.size() << " jobs, "
              << report.threads << " threads, " << report.simulated
              << " simulated, " << report.cacheHits << " cache hits, "
              << TextTable::num(report.cacheBlockedSeconds, 3)
              << " s cache-blocked, "
              << TextTable::num(report.elapsedSeconds, 2) << " s]\n";
    std::cout << "\nexpected shape: adaptive routers track XY at low load "
                 "and saturate later under non-uniform traffic; no "
                 "configuration deadlocks\n";
}

void
bmSimCycle(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {2, 2});
    const routing::EbDaRouting fa(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (auto _ : state) {
        auto cfg = configFor(0.2);
        cfg.warmupCycles = 100;
        cfg.measureCycles = 400;
        cfg.drainCycles = 3000;
        auto result = sim::runSimulation(net, fa, gen, cfg);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(bmSimCycle)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
