/**
 * @file
 * Figure 3 reproduction: a partition missing one direction cannot close
 * a cycle. P = {X+ X- Y-} yields exactly the four 90-degree turns WS,
 * SE, ES, SW; the Dally oracle confirms deadlock freedom on a mesh.
 */

#include "common.hh"

#include "cdg/turn_cdg.hh"
#include "core/turns.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

core::PartitionScheme
fig3Scheme()
{
    core::PartitionScheme s;
    s.add(core::Partition({core::makeClass(0, core::Sign::Pos),
                           core::makeClass(0, core::Sign::Neg),
                           core::makeClass(1, core::Sign::Neg)}));
    return s;
}

void
reproduce()
{
    bench::banner("Figure 3: P = {X+ X- Y-} — missing direction breaks "
                  "the cycle");

    const auto scheme = fig3Scheme();
    const auto set = core::TurnSet::extract(scheme);

    TextTable t;
    t.setHeader({"turn", "kind", "origin"});
    for (const auto &turn : set.turns()) {
        t.addRow({turn.compassName(), core::toString(turn.kind),
                  turn.origin == core::TurnOrigin::Theorem1 ? "Theorem 1"
                  : turn.origin == core::TurnOrigin::Theorem2
                      ? "Theorem 2"
                      : "Theorem 3"});
    }
    t.print(std::cout);
    std::cout << "paper: 90-degree turns WS, SE, ES, SW (4 turns); one "
                 "U-turn per Theorem 2\n";
    std::cout << "measured: " << set.count(core::TurnKind::Turn90)
              << " 90-degree, " << set.count(core::TurnKind::UTurn)
              << " U-turn(s)\n";

    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto report = cdg::checkDeadlockFree(net, scheme);
    std::cout << "Dally oracle on 8x8 mesh: "
              << (report.deadlockFree ? "deadlock-free" : "CYCLIC") << " ("
              << report.numDependencies << " dependencies over "
              << report.numChannels << " channels)\n";
}

void
bmExtract(benchmark::State &state)
{
    const auto scheme = fig3Scheme();
    for (auto _ : state) {
        auto set = core::TurnSet::extract(scheme);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(bmExtract);

void
bmVerify(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto scheme = fig3Scheme();
    for (auto _ : state) {
        auto report = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(bmVerify);

} // namespace

EBDA_BENCH_MAIN(reproduce)
