/**
 * @file
 * Figure 8 reproduction: the complete turn extraction for the 3D
 * minimum-channel design of Figure 9(b) (VCs 2, 2, 4 along X, Y, Z).
 * Prints, per partition and per transition, the Theorem-1 90-degree
 * turns, Theorem-2 U-turns and Theorem-3 turns in the figure's compass
 * notation, then verifies the whole set with the Dally oracle.
 */

#include "common.hh"

#include <sstream>

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"

namespace {

using namespace ebda;

std::string
joinTurns(const std::vector<core::Turn> &turns, core::TurnKind kind)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &t : turns) {
        if (t.kind != kind)
            continue;
        if (!first)
            os << ", ";
        os << t.compassName();
        first = false;
    }
    return os.str();
}

void
reproduce()
{
    bench::banner("Figure 8: turn extraction for the Figure 9(b) scheme "
                  "(VCs 2,2,4)");

    const auto scheme = core::schemeFig9b();
    const auto set = core::TurnSet::extract(scheme);

    for (std::uint16_t p = 0; p < scheme.size(); ++p) {
        std::cout << "\nPartition P" << static_cast<char>('A' + p) << " = "
                  << scheme[p].toString() << '\n';
        const auto intra = set.turnsBetween(p, p);
        std::cout << "  Theorem1 {Turns: " << joinTurns(intra,
                                                        core::TurnKind::Turn90)
                  << "}\n";
        std::cout << "  Theorem2 {U-Turns: "
                  << joinTurns(intra, core::TurnKind::UTurn);
        const auto iturns = joinTurns(intra, core::TurnKind::ITurn);
        if (!iturns.empty())
            std::cout << "; I-Turns: " << iturns;
        std::cout << "}\n";
        for (std::uint16_t q = p + 1; q < scheme.size(); ++q) {
            const auto cross = set.turnsBetween(p, q);
            if (cross.empty())
                continue;
            std::cout << "  Theorem3 P" << static_cast<char>('A' + p)
                      << "->P" << static_cast<char>('A' + q) << " {Turns: "
                      << joinTurns(cross, core::TurnKind::Turn90)
                      << "; U-Turns: "
                      << joinTurns(cross, core::TurnKind::UTurn)
                      << "; I-Turns: "
                      << joinTurns(cross, core::TurnKind::ITurn) << "}\n";
        }
    }

    std::cout << "\ntotals: " << set.count(core::TurnKind::Turn90)
              << " 90-degree, " << set.count(core::TurnKind::UTurn)
              << " U-, " << set.count(core::TurnKind::ITurn)
              << " I-turns (" << set.size() << " transitions)\n";
    std::cout << "paper: 10 Theorem-1 turns + 1 Theorem-2 U-turn per "
                 "partition; Theorem-3 turns per transition as listed\n";

    const auto net = topo::Network::mesh({4, 4, 4}, {2, 2, 4});
    const auto verdict = cdg::checkDeadlockFree(net, scheme);
    std::cout << "Dally oracle on 4x4x4 mesh: "
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << " (" << verdict.numDependencies << " dependencies)\n";

    const auto small = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    const auto adapt = cdg::measureAdaptiveness(small, scheme);
    std::cout << "fully adaptive on 3x3x3: "
              << (adapt.fullyAdaptive ? "yes" : "no") << '\n';
}

void
bmExtractFig9b(benchmark::State &state)
{
    const auto scheme = core::schemeFig9b();
    for (auto _ : state) {
        auto set = core::TurnSet::extract(scheme);
        benchmark::DoNotOptimize(set);
    }
}
BENCHMARK(bmExtractFig9b);

void
bmVerify3d(benchmark::State &state)
{
    const auto net = topo::Network::mesh({4, 4, 4}, {2, 2, 4});
    const auto scheme = core::schemeFig9b();
    for (auto _ : state) {
        auto verdict = cdg::checkDeadlockFree(net, scheme);
        benchmark::DoNotOptimize(verdict);
    }
}
BENCHMARK(bmVerify3d);

} // namespace

EBDA_BENCH_MAIN(reproduce)
