/**
 * @file
 * Figure 6 reproduction: the five partitioning strategies P1..P5 of a
 * 2D network and the routing algorithms they induce — XY, a partially
 * adaptive design, West-First, Negative-First, and the VC variant that
 * adds no adaptiveness. For each strategy the bench prints the turn
 * counts, the classical-algorithm classification, the oracle verdict
 * and the exact adaptiveness.
 */

#include "common.hh"

#include "cdg/adaptivity.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

struct Entry
{
    const char *label;
    const char *paper;
    core::PartitionScheme scheme;
};

std::vector<Entry>
entries()
{
    std::vector<Entry> out;
    out.push_back({"P1", "XY routing", core::schemeFig6P1()});
    out.push_back({"P2", "partially adaptive", core::schemeFig6P2()});
    out.push_back({"P3", "West-First", core::schemeFig6P3()});
    out.push_back({"P4", "Negative-First", core::schemeFig6P4()});
    out.push_back({"P5", "West-First + VCs (no added adaptiveness)",
                   core::schemeFig6P5()});
    return out;
}

void
reproduce()
{
    bench::banner("Figure 6: partitioning strategies P1..P5");

    const auto net = topo::Network::mesh({8, 8}, {1, 2});

    TextTable t;
    t.setHeader({"option", "scheme", "parts", "90-deg", "U", "I",
                 "classified", "paper says", "deadlock-free",
                 "adaptiveness"});
    for (const auto &e : entries()) {
        const auto set = core::TurnSet::extract(e.scheme);
        const auto verdict = cdg::checkDeadlockFree(net, e.scheme);
        const auto adapt = cdg::measureAdaptiveness(net, e.scheme);
        t.addRow({e.label, e.scheme.toString(false),
                  TextTable::num(static_cast<int>(e.scheme.size())),
                  TextTable::num(set.count(core::TurnKind::Turn90)),
                  TextTable::num(set.count(core::TurnKind::UTurn)),
                  TextTable::num(set.count(core::TurnKind::ITurn)),
                  core::classify2dScheme(e.scheme).value_or("-"),
                  e.paper, verdict.deadlockFree ? "yes" : "NO",
                  TextTable::num(adapt.averageFraction, 4)});
    }
    t.print(std::cout);
    std::cout << "paper: P3/P4 reach maximum adaptiveness (6 turns); P5's "
                 "VCs inside one partition add identical turns only\n";
}

void
bmVerifyAllStrategies(benchmark::State &state)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const auto all = entries();
    for (auto _ : state) {
        for (const auto &e : all) {
            auto verdict = cdg::checkDeadlockFree(net, e.scheme);
            benchmark::DoNotOptimize(verdict);
        }
    }
}
BENCHMARK(bmVerifyAllStrategies);

} // namespace

EBDA_BENCH_MAIN(reproduce)
