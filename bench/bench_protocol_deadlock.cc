/**
 * @file
 * Request–reply protocol layer: delivery vs reply-buffer depth on a
 * Dally-verified 4x4 mesh (XY, 2 VCs per link).
 *
 * The channel-level oracle certifies XY deadlock-free, yet with one
 * shared message class a finite endpoint buffer closes the
 * request→endpoint→reply dependency cycle above the channels
 * (message-dependency deadlock). The table sweeps the reply-buffer
 * depth and reports, per depth, what one message class actually
 * delivers (wedging at shallow depths) against the same workload with
 * messageClasses=2 (a dedicated reply VC class — the escape) and with
 * reserveReplyBuffer (end-to-end credit throttling).
 *
 * Gates (exit non-zero on violation):
 *  - every messageClasses=2 row delivers >= 0.99 watchdog-clean;
 *  - every messageClasses=1 wedge is classified as a protocol
 *    deadlock with the channel-level Dally oracle still clean.
 *
 * Machine-readable output: the JSON summary goes to stdout and, when
 * EBDA_PROTOCOL_BENCH_JSON is set, to that path (merged into
 * BENCH_sim.json as the `protocol` member by scripts/perf_baseline.sh).
 */

#include "common.hh"

#include <cstdlib>
#include <sstream>

#include "sim/simulator.hh"
#include "sweep/router_factory.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

constexpr double kRate = 0.35;
constexpr std::uint64_t kCycles = 2000;

sim::SimResult
runProtocol(int depth, int classes, bool reserve)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    std::string err;
    const auto router = sweep::makeRouter(net, "xy", &err);
    if (!router) {
        std::cerr << "router build failed: " << err << '\n';
        std::exit(1);
    }
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = kRate;
    cfg.measureCycles = kCycles;
    cfg.warmupCycles = kCycles / 4;
    cfg.drainCycles = kCycles * 10;
    cfg.watchdogCycles = 800;
    cfg.faults.maxRecoveryAttempts = 0;
    cfg.protocol.requestReply = true;
    cfg.protocol.replyBufferDepth = depth;
    cfg.protocol.messageClasses = classes;
    cfg.protocol.reserveReplyBuffer = reserve;
    return sim::runSimulation(net, *router, gen, cfg);
}

void
reproduce()
{
    bench::banner("Protocol deadlock: delivery vs reply-buffer depth "
                  "(4x4 mesh, XY, 2 VCs, rate "
                  + TextTable::num(kRate, 2) + ")");

    TextTable t;
    t.setHeader({"depth", "M=1 delivered", "M=1 wedge", "M=2 delivered",
                 "M=2 stalls", "reserve wedge", "throttled"});

    bool ok = true;
    std::ostringstream rows;
    rows << '[';
    bool first = true;
    for (const int depth : {1, 2, 4, 8}) {
        const auto m1 = runProtocol(depth, 1, false);
        const auto m2 = runProtocol(depth, 2, false);
        const auto rsv = runProtocol(depth, 1, true);

        // A wedge is only the phenomenon under study if it is a
        // *protocol* deadlock on a channel-clean fabric.
        const auto wedge_of = [&](const sim::SimResult &r) {
            if (!r.deadlocked)
                return std::string("none");
            if (!r.protocolDeadlock)
                ok = false;
            return std::string(r.protocolDeadlock ? "protocol"
                                                  : "channel (?!)");
        };
        const std::string m1_wedge = wedge_of(m1);
        const std::string rsv_wedge = wedge_of(rsv);
        if (m2.deadlocked || m2.deliveredFraction < 0.99)
            ok = false;

        t.addRow({TextTable::num(depth),
                  TextTable::num(m1.deliveredFraction, 4), m1_wedge,
                  TextTable::num(m2.deliveredFraction, 4),
                  TextTable::num(m2.protocolEndpointStalls), rsv_wedge,
                  TextTable::num(rsv.protocolThrottled)});

        rows << (first ? "" : ",") << "{\"depth\":" << depth
             << ",\"m1_delivered\":" << m1.deliveredFraction
             << ",\"m1_wedged\":" << (m1.deadlocked ? "true" : "false")
             << ",\"m1_protocol_deadlock\":"
             << (m1.protocolDeadlock ? "true" : "false")
             << ",\"m2_delivered\":" << m2.deliveredFraction
             << ",\"m2_endpoint_stalls\":" << m2.protocolEndpointStalls
             << ",\"reserve_wedged\":"
             << (rsv.deadlocked ? "true" : "false")
             << ",\"reserve_throttled\":" << rsv.protocolThrottled
             << '}';
        first = false;
    }
    rows << ']';
    t.print(std::cout);
    std::cout << "expected shape: one message class wedges (protocol "
                 "deadlock, channel oracle clean) at shallow depths "
                 "and recovers with buffer headroom; two classes "
                 "deliver ~1.0 at every depth; reservation throttles "
                 "the wedge away only once the shared buffer has "
                 "headroom beyond the local reservations\n";

    std::ostringstream json;
    json << "{\"mesh\":\"4x4\",\"router\":\"xy\",\"rate\":" << kRate
         << ",\"cycles\":" << kCycles << ",\"rows\":" << rows.str()
         << '}';
    std::cout << "\nPROTOCOL_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_PROTOCOL_BENCH_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    if (!ok) {
        std::cerr << "protocol bench gate FAILED: expected "
                     "messageClasses=2 delivery >= 0.99 and every "
                     "messageClasses=1 wedge classified as a protocol "
                     "deadlock\n";
        std::exit(1);
    }
}

/** Timing: one full request–reply run with the reply-class escape —
 *  the protocol layer's steady-state overhead on the sim loop. */
void
bmProtocolRun(benchmark::State &state)
{
    for (auto _ : state) {
        auto r = runProtocol(4, 2, false);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(bmProtocolRun)->Unit(benchmark::kMillisecond);

} // namespace

EBDA_BENCH_MAIN(reproduce)
