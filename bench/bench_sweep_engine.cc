/**
 * @file
 * Perf gates for the fleet-scale sweep engine (src/sweep/): the binary
 * record store's warm-start and all-hit serving rates, and the
 * cost-aware scheduler's straggler-tail collapse.
 *
 * Three gates:
 *  - warm start: opening the binary store (persisted index, mmap) on a
 *    >= 5k-entry cache and serving one lookup must beat a full parse of
 *    the same cache in the legacy JSONL format — the old open path —
 *    by >= 10x. Always enforced.
 *  - all-hit throughput: a fully cached sweep (every job served, zero
 *    simulations) must clear 100k jobs/s end to end through runSweep.
 *    Always enforced.
 *  - straggler tail: on a grid of many cheap jobs with one expensive
 *    job buried at the END of spec order (the FIFO worst case), the
 *    cost-descending schedule's makespan must be <= 0.8x the spec-order
 *    makespan, with byte-identical result JSONL. Enforced ONLY with
 *    >= 4 hardware threads; on smaller hosts the ratio is still
 *    measured and reported but the gate is skipped with a notice (a
 *    serial host has no tail to collapse).
 *
 * Machine-readable output: the JSON summary is printed to stdout and,
 * when EBDA_SWEEP_ENGINE_JSON is set, written to that path
 * (scripts/perf_baseline.sh merges it into BENCH_sim.json as the
 * `sweep_engine` member; CI uploads it as an artifact).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/sim_json.hh"
#include "sweep/result_cache.hh"
#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"
#include "util/json.hh"

namespace ebda {
namespace {

using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Scratch dir under CWD, wiped on both ends. */
struct ScratchDir
{
    explicit ScratchDir(const char *tag)
        : path(std::string("bench-sweep-engine-") + tag)
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/** A 4x4-mesh grid point at the given injection rate. */
sweep::SweepJob
lightJob(double rate, std::vector<int> dims = {4, 4},
         std::uint64_t warmup = 100, std::uint64_t measure = 200)
{
    sweep::SweepJob job;
    job.topo.kind = sweep::TopologySpec::Kind::Mesh;
    job.topo.dims = std::move(dims);
    job.topo.vcs = {2, 2};
    job.router = "xy";
    job.pattern = sim::TrafficPattern::Uniform;
    job.cfg.injectionRate = rate;
    job.cfg.warmupCycles = warmup;
    job.cfg.measureCycles = measure;
    job.cfg.drainCycles = 3000;
    job.cfg.watchdogCycles = 20000;
    job.cfg.seed = 2026;
    sweep::finalizeJob(job);
    return job;
}

/** A synthetic result (the serving gates never simulate). */
sim::SimResult
syntheticResult(std::size_t i)
{
    sim::SimResult r;
    r.avgLatency = 10.0 + 0.001 * static_cast<double>(i);
    r.packetsMeasured = 100 + i;
    r.packetsEjected = 100 + i;
    r.drained = true;
    return r;
}

int
benchMain()
{
    const unsigned hw = std::thread::hardware_concurrency();
    bool pass = true;

    // ----------------------------------------------------------------
    // Build a >= 5k-entry cache of distinct grid points. Results are
    // synthetic: these gates measure serving, not simulation.
    constexpr std::size_t kEntries = 6000;
    std::printf("sweep engine bench (%u hardware thread%s)\n", hw,
                hw == 1 ? "" : "s");
    std::printf("populating %zu-entry cache...\n", kEntries);

    const ScratchDir dir("store");
    std::vector<sweep::SweepJob> jobs;
    jobs.reserve(kEntries);
    for (std::size_t i = 0; i < kEntries; ++i)
        jobs.push_back(
            lightJob(0.001 + 0.0001 * static_cast<double>(i)));
    {
        sweep::ResultCache writer(dir.path);
        for (std::size_t i = 0; i < kEntries; ++i)
            writer.store(jobs[i].key, jobs[i].canonical,
                         syntheticResult(i),
                         /*wallSeconds=*/0.001);
    }

    // The legacy-format rendition of the same cache: what every open
    // used to parse in full.
    const std::string legacyPath = dir.path + "/legacy-export.jsonl";
    {
        std::string err;
        if (!sweep::ResultCache::exportJsonl(dir.path, legacyPath,
                                             nullptr, &err)) {
            std::cerr << "export failed: " << err << '\n';
            return 1;
        }
    }

    // ----------------------------------------------------------------
    // Gate 1: warm start. Binary open + first lookup vs the legacy
    // open path (parse every JSONL line into a SimResult — the exact
    // work the old ResultCache constructor did). Best of 3 each.
    double binOpen = 1e9, jsonlParse = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = Clock::now();
        sweep::ResultCache cache(dir.path);
        const auto hit = cache.lookup(jobs[kEntries / 2].key);
        const auto t1 = Clock::now();
        if (!hit || cache.entries() != kEntries) {
            std::cerr << "warm open served "
                      << cache.entries() << "/" << kEntries
                      << " entries\n";
            return 1;
        }
        binOpen = std::min(binOpen, seconds(t0, t1));
    }
    std::size_t parsed = 0;
    {
        const auto t0 = Clock::now();
        std::ifstream in(legacyPath);
        std::string line;
        while (std::getline(in, line)) {
            const auto doc = parseJson(line);
            if (!doc || !doc->isObject())
                continue;
            const auto *result = doc->find("result");
            if (result && sim::resultFromJson(*result))
                ++parsed;
        }
        jsonlParse = seconds(t0, Clock::now());
    }
    if (parsed != kEntries) {
        std::cerr << "legacy parse covered " << parsed << "/" << kEntries
                  << " lines\n";
        return 1;
    }
    const double warmSpeedup = binOpen > 0 ? jsonlParse / binOpen : 0.0;
    std::printf("warm start: binary open+lookup %.1f ms vs legacy "
                "JSONL parse %.1f ms -> %.1fx\n",
                binOpen * 1e3, jsonlParse * 1e3, warmSpeedup);
    const bool warmPass = warmSpeedup >= 10.0;
    std::printf("  warm-start gate: %.1fx >= 10x: %s\n", warmSpeedup,
                warmPass ? "ok" : "TOO SLOW");
    if (!warmPass)
        pass = false;

    // ----------------------------------------------------------------
    // Gate 2: all-hit throughput through runSweep. Every key is
    // served; zero simulations may run.
    double allHitRate = 0.0;
    {
        sweep::ResultCache cache(dir.path);
        sweep::RunOptions opts;
        opts.cache = &cache;
        double best = 1e9;
        for (int rep = 0; rep < 3; ++rep) {
            const auto t0 = Clock::now();
            const auto report = sweep::runSweep(jobs, opts);
            const double dt = seconds(t0, Clock::now());
            if (report.simulated != 0 ||
                report.cacheHits < kEntries * (rep + 1)) {
                std::cerr << "all-hit sweep simulated "
                          << report.simulated << " job(s)\n";
                return 1;
            }
            best = std::min(best, dt);
        }
        allHitRate = static_cast<double>(kEntries) / best;
    }
    const bool allHitPass = allHitRate >= 100e3;
    std::printf("all-hit serving: %.0f jobs/s\n", allHitRate);
    std::printf("  all-hit gate: %.0f >= 100000 jobs/s: %s\n",
                allHitRate, allHitPass ? "ok" : "TOO SLOW");
    if (!allHitPass)
        pass = false;

    // ----------------------------------------------------------------
    // Gate 3: straggler tail. Many cheap jobs followed by one
    // expensive job in spec order; the cost model must front-load it.
    std::vector<sweep::SweepJob> tail;
    for (std::size_t i = 0; i < 160; ++i)
        tail.push_back(lightJob(0.02 + 0.0001 * static_cast<double>(i)));
    // The straggler: a 16x16 mesh with a long measurement window,
    // appended LAST. Its nodes x cycles prior dwarfs the light jobs',
    // so CostDescending schedules it first.
    tail.push_back(lightJob(0.10, {16, 16}, 1000, 4000));

    double fifoMakespan = 0.0, costMakespan = 0.0;
    std::string fifoRows, costRows;
    {
        sweep::RunOptions fifo;
        fifo.order = sweep::JobOrder::Spec;
        const auto t0 = Clock::now();
        const auto report = sweep::runSweep(tail, fifo);
        fifoMakespan = seconds(t0, Clock::now());
        std::ostringstream rows;
        sweep::writeResultsJsonl(tail, report.outcomes, rows);
        fifoRows = rows.str();
    }
    {
        sweep::RunOptions cost;
        cost.order = sweep::JobOrder::CostDescending;
        const auto t0 = Clock::now();
        const auto report = sweep::runSweep(tail, cost);
        costMakespan = seconds(t0, Clock::now());
        std::ostringstream rows;
        sweep::writeResultsJsonl(tail, report.outcomes, rows);
        costRows = rows.str();
    }
    const bool identical = fifoRows == costRows && !fifoRows.empty();
    if (!identical) {
        std::printf("straggler sweep: cost-ordered rows DIVERGED from "
                    "spec order\n");
        pass = false;
    }
    const double tailRatio =
        fifoMakespan > 0 ? costMakespan / fifoMakespan : 0.0;
    std::printf("straggler tail: spec order %.2f s, cost order %.2f s "
                "-> ratio %.2f\n",
                fifoMakespan, costMakespan, tailRatio);
    const bool tailEnforced = hw >= 4;
    bool tailPass = true;
    if (tailEnforced) {
        tailPass = tailRatio <= 0.8;
        std::printf("  straggler gate: ratio %.2f <= 0.8: %s\n",
                    tailRatio, tailPass ? "ok" : "TOO SLOW");
        if (!tailPass)
            pass = false;
    } else {
        std::printf("  NOTICE: straggler gate SKIPPED — host has %u "
                    "hardware thread%s (< 4); a serial schedule has no "
                    "tail to collapse\n",
                    hw, hw == 1 ? "" : "s");
    }

    std::ostringstream json;
    json << "{\"bench\":\"sweep_engine\""
         << ",\"entries\":" << kEntries
         << ",\"hardware_threads\":" << hw
         << ",\"warm_open_seconds\":" << binOpen
         << ",\"legacy_parse_seconds\":" << jsonlParse
         << ",\"warm_speedup\":" << warmSpeedup
         << ",\"all_hit_jobs_per_sec\":" << allHitRate
         << ",\"straggler_fifo_seconds\":" << fifoMakespan
         << ",\"straggler_cost_seconds\":" << costMakespan
         << ",\"straggler_ratio\":" << tailRatio
         << ",\"straggler_gate_enforced\":"
         << (tailEnforced ? "true" : "false")
         << ",\"rows_identical\":" << (identical ? "true" : "false")
         << ",\"pass\":" << (pass ? "true" : "false") << "}";

    std::cout << "\nSWEEP_ENGINE_BENCH_JSON: " << json.str() << '\n';
    if (const char *path = std::getenv("EBDA_SWEEP_ENGINE_JSON");
        path && *path) {
        std::ofstream out(path);
        out << json.str() << '\n';
    }
    return pass ? 0 : 1;
}

} // namespace
} // namespace ebda

int
main()
{
    return ebda::benchMain();
}
