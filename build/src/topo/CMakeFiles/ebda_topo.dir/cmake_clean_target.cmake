file(REMOVE_RECURSE
  "libebda_topo.a"
)
