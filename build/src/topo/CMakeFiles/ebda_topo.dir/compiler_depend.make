# Empty compiler generated dependencies file for ebda_topo.
# This may be replaced when dependencies are built.
