file(REMOVE_RECURSE
  "CMakeFiles/ebda_topo.dir/network.cc.o"
  "CMakeFiles/ebda_topo.dir/network.cc.o.d"
  "libebda_topo.a"
  "libebda_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
