# Empty dependencies file for ebda_routing.
# This may be replaced when dependencies are built.
