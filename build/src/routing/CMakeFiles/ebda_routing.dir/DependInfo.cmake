
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/baselines.cc" "src/routing/CMakeFiles/ebda_routing.dir/baselines.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/baselines.cc.o.d"
  "/root/repo/src/routing/dateline.cc" "src/routing/CMakeFiles/ebda_routing.dir/dateline.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/dateline.cc.o.d"
  "/root/repo/src/routing/duato.cc" "src/routing/CMakeFiles/ebda_routing.dir/duato.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/duato.cc.o.d"
  "/root/repo/src/routing/ebda_routing.cc" "src/routing/CMakeFiles/ebda_routing.dir/ebda_routing.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/ebda_routing.cc.o.d"
  "/root/repo/src/routing/elevator.cc" "src/routing/CMakeFiles/ebda_routing.dir/elevator.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/elevator.cc.o.d"
  "/root/repo/src/routing/updown.cc" "src/routing/CMakeFiles/ebda_routing.dir/updown.cc.o" "gcc" "src/routing/CMakeFiles/ebda_routing.dir/updown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdg/CMakeFiles/ebda_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ebda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ebda_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ebda_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
