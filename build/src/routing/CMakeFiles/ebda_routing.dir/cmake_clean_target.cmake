file(REMOVE_RECURSE
  "libebda_routing.a"
)
