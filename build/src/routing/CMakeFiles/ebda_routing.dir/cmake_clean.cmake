file(REMOVE_RECURSE
  "CMakeFiles/ebda_routing.dir/baselines.cc.o"
  "CMakeFiles/ebda_routing.dir/baselines.cc.o.d"
  "CMakeFiles/ebda_routing.dir/dateline.cc.o"
  "CMakeFiles/ebda_routing.dir/dateline.cc.o.d"
  "CMakeFiles/ebda_routing.dir/duato.cc.o"
  "CMakeFiles/ebda_routing.dir/duato.cc.o.d"
  "CMakeFiles/ebda_routing.dir/ebda_routing.cc.o"
  "CMakeFiles/ebda_routing.dir/ebda_routing.cc.o.d"
  "CMakeFiles/ebda_routing.dir/elevator.cc.o"
  "CMakeFiles/ebda_routing.dir/elevator.cc.o.d"
  "CMakeFiles/ebda_routing.dir/updown.cc.o"
  "CMakeFiles/ebda_routing.dir/updown.cc.o.d"
  "libebda_routing.a"
  "libebda_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
