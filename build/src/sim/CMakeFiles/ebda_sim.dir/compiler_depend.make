# Empty compiler generated dependencies file for ebda_sim.
# This may be replaced when dependencies are built.
