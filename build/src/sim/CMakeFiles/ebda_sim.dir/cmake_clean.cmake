file(REMOVE_RECURSE
  "CMakeFiles/ebda_sim.dir/simulator.cc.o"
  "CMakeFiles/ebda_sim.dir/simulator.cc.o.d"
  "CMakeFiles/ebda_sim.dir/traffic.cc.o"
  "CMakeFiles/ebda_sim.dir/traffic.cc.o.d"
  "libebda_sim.a"
  "libebda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
