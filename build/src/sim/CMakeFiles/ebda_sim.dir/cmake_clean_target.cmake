file(REMOVE_RECURSE
  "libebda_sim.a"
)
