# Empty dependencies file for ebda_graph.
# This may be replaced when dependencies are built.
