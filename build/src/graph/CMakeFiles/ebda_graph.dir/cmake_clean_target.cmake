file(REMOVE_RECURSE
  "libebda_graph.a"
)
