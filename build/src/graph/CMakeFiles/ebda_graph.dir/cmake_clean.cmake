file(REMOVE_RECURSE
  "CMakeFiles/ebda_graph.dir/cycles.cc.o"
  "CMakeFiles/ebda_graph.dir/cycles.cc.o.d"
  "CMakeFiles/ebda_graph.dir/digraph.cc.o"
  "CMakeFiles/ebda_graph.dir/digraph.cc.o.d"
  "libebda_graph.a"
  "libebda_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
