# Empty dependencies file for ebda_cdg.
# This may be replaced when dependencies are built.
