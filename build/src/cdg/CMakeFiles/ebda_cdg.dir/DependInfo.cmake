
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdg/adaptivity.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/adaptivity.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/adaptivity.cc.o.d"
  "/root/repo/src/cdg/class_map.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/class_map.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/class_map.cc.o.d"
  "/root/repo/src/cdg/duato_check.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/duato_check.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/duato_check.cc.o.d"
  "/root/repo/src/cdg/relation_cdg.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/relation_cdg.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/relation_cdg.cc.o.d"
  "/root/repo/src/cdg/turn_cdg.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/turn_cdg.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/turn_cdg.cc.o.d"
  "/root/repo/src/cdg/turn_model_enum.cc" "src/cdg/CMakeFiles/ebda_cdg.dir/turn_model_enum.cc.o" "gcc" "src/cdg/CMakeFiles/ebda_cdg.dir/turn_model_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ebda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ebda_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ebda_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
