file(REMOVE_RECURSE
  "libebda_cdg.a"
)
