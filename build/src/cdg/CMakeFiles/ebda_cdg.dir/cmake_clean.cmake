file(REMOVE_RECURSE
  "CMakeFiles/ebda_cdg.dir/adaptivity.cc.o"
  "CMakeFiles/ebda_cdg.dir/adaptivity.cc.o.d"
  "CMakeFiles/ebda_cdg.dir/class_map.cc.o"
  "CMakeFiles/ebda_cdg.dir/class_map.cc.o.d"
  "CMakeFiles/ebda_cdg.dir/duato_check.cc.o"
  "CMakeFiles/ebda_cdg.dir/duato_check.cc.o.d"
  "CMakeFiles/ebda_cdg.dir/relation_cdg.cc.o"
  "CMakeFiles/ebda_cdg.dir/relation_cdg.cc.o.d"
  "CMakeFiles/ebda_cdg.dir/turn_cdg.cc.o"
  "CMakeFiles/ebda_cdg.dir/turn_cdg.cc.o.d"
  "CMakeFiles/ebda_cdg.dir/turn_model_enum.cc.o"
  "CMakeFiles/ebda_cdg.dir/turn_model_enum.cc.o.d"
  "libebda_cdg.a"
  "libebda_cdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_cdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
