file(REMOVE_RECURSE
  "CMakeFiles/ebda_util.dir/json.cc.o"
  "CMakeFiles/ebda_util.dir/json.cc.o.d"
  "CMakeFiles/ebda_util.dir/logging.cc.o"
  "CMakeFiles/ebda_util.dir/logging.cc.o.d"
  "CMakeFiles/ebda_util.dir/random.cc.o"
  "CMakeFiles/ebda_util.dir/random.cc.o.d"
  "CMakeFiles/ebda_util.dir/stats.cc.o"
  "CMakeFiles/ebda_util.dir/stats.cc.o.d"
  "CMakeFiles/ebda_util.dir/table.cc.o"
  "CMakeFiles/ebda_util.dir/table.cc.o.d"
  "libebda_util.a"
  "libebda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
