# Empty compiler generated dependencies file for ebda_util.
# This may be replaced when dependencies are built.
