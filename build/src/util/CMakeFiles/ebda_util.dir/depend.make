# Empty dependencies file for ebda_util.
# This may be replaced when dependencies are built.
