file(REMOVE_RECURSE
  "libebda_util.a"
)
