# Empty compiler generated dependencies file for ebda_core.
# This may be replaced when dependencies are built.
