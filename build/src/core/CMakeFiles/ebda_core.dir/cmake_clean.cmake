file(REMOVE_RECURSE
  "CMakeFiles/ebda_core.dir/arrange.cc.o"
  "CMakeFiles/ebda_core.dir/arrange.cc.o.d"
  "CMakeFiles/ebda_core.dir/catalog.cc.o"
  "CMakeFiles/ebda_core.dir/catalog.cc.o.d"
  "CMakeFiles/ebda_core.dir/channel_class.cc.o"
  "CMakeFiles/ebda_core.dir/channel_class.cc.o.d"
  "CMakeFiles/ebda_core.dir/derivation.cc.o"
  "CMakeFiles/ebda_core.dir/derivation.cc.o.d"
  "CMakeFiles/ebda_core.dir/enumerate.cc.o"
  "CMakeFiles/ebda_core.dir/enumerate.cc.o.d"
  "CMakeFiles/ebda_core.dir/minimal.cc.o"
  "CMakeFiles/ebda_core.dir/minimal.cc.o.d"
  "CMakeFiles/ebda_core.dir/parse.cc.o"
  "CMakeFiles/ebda_core.dir/parse.cc.o.d"
  "CMakeFiles/ebda_core.dir/partition.cc.o"
  "CMakeFiles/ebda_core.dir/partition.cc.o.d"
  "CMakeFiles/ebda_core.dir/partitioning.cc.o"
  "CMakeFiles/ebda_core.dir/partitioning.cc.o.d"
  "CMakeFiles/ebda_core.dir/torus.cc.o"
  "CMakeFiles/ebda_core.dir/torus.cc.o.d"
  "CMakeFiles/ebda_core.dir/turns.cc.o"
  "CMakeFiles/ebda_core.dir/turns.cc.o.d"
  "libebda_core.a"
  "libebda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
