file(REMOVE_RECURSE
  "libebda_core.a"
)
