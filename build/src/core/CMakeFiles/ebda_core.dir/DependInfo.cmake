
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arrange.cc" "src/core/CMakeFiles/ebda_core.dir/arrange.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/arrange.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/ebda_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/channel_class.cc" "src/core/CMakeFiles/ebda_core.dir/channel_class.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/channel_class.cc.o.d"
  "/root/repo/src/core/derivation.cc" "src/core/CMakeFiles/ebda_core.dir/derivation.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/derivation.cc.o.d"
  "/root/repo/src/core/enumerate.cc" "src/core/CMakeFiles/ebda_core.dir/enumerate.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/enumerate.cc.o.d"
  "/root/repo/src/core/minimal.cc" "src/core/CMakeFiles/ebda_core.dir/minimal.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/minimal.cc.o.d"
  "/root/repo/src/core/parse.cc" "src/core/CMakeFiles/ebda_core.dir/parse.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/parse.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/ebda_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/partition.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/core/CMakeFiles/ebda_core.dir/partitioning.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/partitioning.cc.o.d"
  "/root/repo/src/core/torus.cc" "src/core/CMakeFiles/ebda_core.dir/torus.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/torus.cc.o.d"
  "/root/repo/src/core/turns.cc" "src/core/CMakeFiles/ebda_core.dir/turns.cc.o" "gcc" "src/core/CMakeFiles/ebda_core.dir/turns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ebda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
