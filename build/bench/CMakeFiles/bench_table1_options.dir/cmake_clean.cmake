file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_options.dir/bench_table1_options.cc.o"
  "CMakeFiles/bench_table1_options.dir/bench_table1_options.cc.o.d"
  "bench_table1_options"
  "bench_table1_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
