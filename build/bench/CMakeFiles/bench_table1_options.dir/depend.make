# Empty dependencies file for bench_table1_options.
# This may be replaced when dependencies are built.
