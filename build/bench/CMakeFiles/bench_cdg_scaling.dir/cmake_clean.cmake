file(REMOVE_RECURSE
  "CMakeFiles/bench_cdg_scaling.dir/bench_cdg_scaling.cc.o"
  "CMakeFiles/bench_cdg_scaling.dir/bench_cdg_scaling.cc.o.d"
  "bench_cdg_scaling"
  "bench_cdg_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdg_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
