# Empty dependencies file for bench_cdg_scaling.
# This may be replaced when dependencies are built.
