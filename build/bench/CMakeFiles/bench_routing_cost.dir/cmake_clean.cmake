file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_cost.dir/bench_routing_cost.cc.o"
  "CMakeFiles/bench_routing_cost.dir/bench_routing_cost.cc.o.d"
  "bench_routing_cost"
  "bench_routing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
