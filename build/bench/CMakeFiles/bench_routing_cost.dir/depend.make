# Empty dependencies file for bench_routing_cost.
# This may be replaced when dependencies are built.
