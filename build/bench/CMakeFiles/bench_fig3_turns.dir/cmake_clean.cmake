file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_turns.dir/bench_fig3_turns.cc.o"
  "CMakeFiles/bench_fig3_turns.dir/bench_fig3_turns.cc.o.d"
  "bench_fig3_turns"
  "bench_fig3_turns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_turns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
