# Empty dependencies file for bench_fig3_turns.
# This may be replaced when dependencies are built.
