# Empty dependencies file for bench_fig8_turn_extraction.
# This may be replaced when dependencies are built.
