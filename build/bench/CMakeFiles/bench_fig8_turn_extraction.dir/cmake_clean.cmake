file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_turn_extraction.dir/bench_fig8_turn_extraction.cc.o"
  "CMakeFiles/bench_fig8_turn_extraction.dir/bench_fig8_turn_extraction.cc.o.d"
  "bench_fig8_turn_extraction"
  "bench_fig8_turn_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_turn_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
