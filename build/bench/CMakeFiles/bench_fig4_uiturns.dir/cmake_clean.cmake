file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_uiturns.dir/bench_fig4_uiturns.cc.o"
  "CMakeFiles/bench_fig4_uiturns.dir/bench_fig4_uiturns.cc.o.d"
  "bench_fig4_uiturns"
  "bench_fig4_uiturns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_uiturns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
