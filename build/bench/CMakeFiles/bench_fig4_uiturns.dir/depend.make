# Empty dependencies file for bench_fig4_uiturns.
# This may be replaced when dependencies are built.
