# Empty dependencies file for bench_sim_latency.
# This may be replaced when dependencies are built.
