file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_latency.dir/bench_sim_latency.cc.o"
  "CMakeFiles/bench_sim_latency.dir/bench_sim_latency.cc.o.d"
  "bench_sim_latency"
  "bench_sim_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
