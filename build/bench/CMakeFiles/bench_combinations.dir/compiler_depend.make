# Empty compiler generated dependencies file for bench_combinations.
# This may be replaced when dependencies are built.
