# Empty compiler generated dependencies file for bench_table5_partial3d.
# This may be replaced when dependencies are built.
