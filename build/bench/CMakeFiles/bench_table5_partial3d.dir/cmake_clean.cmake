file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_partial3d.dir/bench_table5_partial3d.cc.o"
  "CMakeFiles/bench_table5_partial3d.dir/bench_table5_partial3d.cc.o.d"
  "bench_table5_partial3d"
  "bench_table5_partial3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_partial3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
