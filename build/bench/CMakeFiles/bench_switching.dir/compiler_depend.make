# Empty compiler generated dependencies file for bench_switching.
# This may be replaced when dependencies are built.
