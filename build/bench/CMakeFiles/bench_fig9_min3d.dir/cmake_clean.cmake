file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_min3d.dir/bench_fig9_min3d.cc.o"
  "CMakeFiles/bench_fig9_min3d.dir/bench_fig9_min3d.cc.o.d"
  "bench_fig9_min3d"
  "bench_fig9_min3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_min3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
