# Empty dependencies file for bench_fig9_min3d.
# This may be replaced when dependencies are built.
