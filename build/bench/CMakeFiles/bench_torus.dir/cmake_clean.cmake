file(REMOVE_RECURSE
  "CMakeFiles/bench_torus.dir/bench_torus.cc.o"
  "CMakeFiles/bench_torus.dir/bench_torus.cc.o.d"
  "bench_torus"
  "bench_torus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_torus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
