# Empty dependencies file for bench_torus.
# This may be replaced when dependencies are built.
