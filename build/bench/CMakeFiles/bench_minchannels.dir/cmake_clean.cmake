file(REMOVE_RECURSE
  "CMakeFiles/bench_minchannels.dir/bench_minchannels.cc.o"
  "CMakeFiles/bench_minchannels.dir/bench_minchannels.cc.o.d"
  "bench_minchannels"
  "bench_minchannels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minchannels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
