# Empty dependencies file for bench_minchannels.
# This may be replaced when dependencies are built.
