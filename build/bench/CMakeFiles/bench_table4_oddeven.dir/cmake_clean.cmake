file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_oddeven.dir/bench_table4_oddeven.cc.o"
  "CMakeFiles/bench_table4_oddeven.dir/bench_table4_oddeven.cc.o.d"
  "bench_table4_oddeven"
  "bench_table4_oddeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_oddeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
