# Empty dependencies file for bench_table4_oddeven.
# This may be replaced when dependencies are built.
