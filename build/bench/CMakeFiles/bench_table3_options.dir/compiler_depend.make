# Empty compiler generated dependencies file for bench_table3_options.
# This may be replaced when dependencies are built.
