file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_options.dir/bench_table3_options.cc.o"
  "CMakeFiles/bench_table3_options.dir/bench_table3_options.cc.o.d"
  "bench_table3_options"
  "bench_table3_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
