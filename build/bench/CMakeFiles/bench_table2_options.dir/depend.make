# Empty dependencies file for bench_table2_options.
# This may be replaced when dependencies are built.
