file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_min2d.dir/bench_fig7_min2d.cc.o"
  "CMakeFiles/bench_fig7_min2d.dir/bench_fig7_min2d.cc.o.d"
  "bench_fig7_min2d"
  "bench_fig7_min2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_min2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
