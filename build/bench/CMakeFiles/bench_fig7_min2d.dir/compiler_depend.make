# Empty compiler generated dependencies file for bench_fig7_min2d.
# This may be replaced when dependencies are built.
