file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_partitionings.dir/bench_fig6_partitionings.cc.o"
  "CMakeFiles/bench_fig6_partitionings.dir/bench_fig6_partitionings.cc.o.d"
  "bench_fig6_partitionings"
  "bench_fig6_partitionings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_partitionings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
