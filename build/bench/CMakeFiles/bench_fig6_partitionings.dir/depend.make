# Empty dependencies file for bench_fig6_partitionings.
# This may be replaced when dependencies are built.
