file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_northlast.dir/bench_fig5_northlast.cc.o"
  "CMakeFiles/bench_fig5_northlast.dir/bench_fig5_northlast.cc.o.d"
  "bench_fig5_northlast"
  "bench_fig5_northlast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_northlast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
