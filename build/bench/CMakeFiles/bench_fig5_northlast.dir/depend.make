# Empty dependencies file for bench_fig5_northlast.
# This may be replaced when dependencies are built.
