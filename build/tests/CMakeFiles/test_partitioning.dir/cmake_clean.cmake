file(REMOVE_RECURSE
  "CMakeFiles/test_partitioning.dir/test_partitioning.cc.o"
  "CMakeFiles/test_partitioning.dir/test_partitioning.cc.o.d"
  "test_partitioning"
  "test_partitioning.pdb"
  "test_partitioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
