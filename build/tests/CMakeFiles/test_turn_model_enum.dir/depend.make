# Empty dependencies file for test_turn_model_enum.
# This may be replaced when dependencies are built.
