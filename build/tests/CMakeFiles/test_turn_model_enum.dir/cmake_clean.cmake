file(REMOVE_RECURSE
  "CMakeFiles/test_turn_model_enum.dir/test_turn_model_enum.cc.o"
  "CMakeFiles/test_turn_model_enum.dir/test_turn_model_enum.cc.o.d"
  "test_turn_model_enum"
  "test_turn_model_enum.pdb"
  "test_turn_model_enum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turn_model_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
