# Empty compiler generated dependencies file for test_duato.
# This may be replaced when dependencies are built.
