file(REMOVE_RECURSE
  "CMakeFiles/test_duato.dir/test_duato.cc.o"
  "CMakeFiles/test_duato.dir/test_duato.cc.o.d"
  "test_duato"
  "test_duato.pdb"
  "test_duato[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_duato.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
