file(REMOVE_RECURSE
  "CMakeFiles/test_turns.dir/test_turns.cc.o"
  "CMakeFiles/test_turns.dir/test_turns.cc.o.d"
  "test_turns"
  "test_turns.pdb"
  "test_turns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
