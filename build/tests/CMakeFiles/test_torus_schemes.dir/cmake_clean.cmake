file(REMOVE_RECURSE
  "CMakeFiles/test_torus_schemes.dir/test_torus_schemes.cc.o"
  "CMakeFiles/test_torus_schemes.dir/test_torus_schemes.cc.o.d"
  "test_torus_schemes"
  "test_torus_schemes.pdb"
  "test_torus_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torus_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
