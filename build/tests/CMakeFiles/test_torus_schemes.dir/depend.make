# Empty dependencies file for test_torus_schemes.
# This may be replaced when dependencies are built.
