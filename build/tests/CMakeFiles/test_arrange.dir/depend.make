# Empty dependencies file for test_arrange.
# This may be replaced when dependencies are built.
