# Empty compiler generated dependencies file for test_derivation.
# This may be replaced when dependencies are built.
