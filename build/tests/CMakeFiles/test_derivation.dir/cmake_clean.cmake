file(REMOVE_RECURSE
  "CMakeFiles/test_derivation.dir/test_derivation.cc.o"
  "CMakeFiles/test_derivation.dir/test_derivation.cc.o.d"
  "test_derivation"
  "test_derivation.pdb"
  "test_derivation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_derivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
