file(REMOVE_RECURSE
  "CMakeFiles/test_class_map.dir/test_class_map.cc.o"
  "CMakeFiles/test_class_map.dir/test_class_map.cc.o.d"
  "test_class_map"
  "test_class_map.pdb"
  "test_class_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
