file(REMOVE_RECURSE
  "CMakeFiles/test_channel_class.dir/test_channel_class.cc.o"
  "CMakeFiles/test_channel_class.dir/test_channel_class.cc.o.d"
  "test_channel_class"
  "test_channel_class.pdb"
  "test_channel_class[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
