# Empty compiler generated dependencies file for test_channel_class.
# This may be replaced when dependencies are built.
