
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_channel_class.cc" "tests/CMakeFiles/test_channel_class.dir/test_channel_class.cc.o" "gcc" "tests/CMakeFiles/test_channel_class.dir/test_channel_class.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/ebda_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ebda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/ebda_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ebda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ebda_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ebda_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ebda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
