# Empty dependencies file for test_minimal.
# This may be replaced when dependencies are built.
