file(REMOVE_RECURSE
  "CMakeFiles/test_minimal.dir/test_minimal.cc.o"
  "CMakeFiles/test_minimal.dir/test_minimal.cc.o.d"
  "test_minimal"
  "test_minimal.pdb"
  "test_minimal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
