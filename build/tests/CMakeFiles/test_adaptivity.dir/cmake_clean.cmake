file(REMOVE_RECURSE
  "CMakeFiles/test_adaptivity.dir/test_adaptivity.cc.o"
  "CMakeFiles/test_adaptivity.dir/test_adaptivity.cc.o.d"
  "test_adaptivity"
  "test_adaptivity.pdb"
  "test_adaptivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
