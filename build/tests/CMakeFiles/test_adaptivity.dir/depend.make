# Empty dependencies file for test_adaptivity.
# This may be replaced when dependencies are built.
