# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_channel_class[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_turns[1]_include.cmake")
include("/root/repo/build/tests/test_arrange[1]_include.cmake")
include("/root/repo/build/tests/test_partitioning[1]_include.cmake")
include("/root/repo/build/tests/test_derivation[1]_include.cmake")
include("/root/repo/build/tests/test_minimal[1]_include.cmake")
include("/root/repo/build/tests/test_enumerate[1]_include.cmake")
include("/root/repo/build/tests/test_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_class_map[1]_include.cmake")
include("/root/repo/build/tests/test_cdg[1]_include.cmake")
include("/root/repo/build/tests/test_adaptivity[1]_include.cmake")
include("/root/repo/build/tests/test_turn_model_enum[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_parse[1]_include.cmake")
include("/root/repo/build/tests/test_duato[1]_include.cmake")
include("/root/repo/build/tests/test_switching[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_torus_schemes[1]_include.cmake")
