file(REMOVE_RECURSE
  "CMakeFiles/ebda_tool.dir/ebda_tool.cc.o"
  "CMakeFiles/ebda_tool.dir/ebda_tool.cc.o.d"
  "ebda_tool"
  "ebda_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebda_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
