# Empty dependencies file for ebda_tool.
# This may be replaced when dependencies are built.
