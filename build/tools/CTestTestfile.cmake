# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_verify_northlast "/root/repo/build/tools/ebda_tool" "verify" "--scheme" "{X+ X- Y-} -> {Y+}" "--mesh" "6x6")
set_tests_properties(tool_verify_northlast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_verify_rejects_two_pairs "/root/repo/build/tools/ebda_tool" "verify" "--scheme" "{X+ X- Y+ Y-}")
set_tests_properties(tool_verify_rejects_two_pairs PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_turns "/root/repo/build/tools/ebda_tool" "turns" "--scheme" "{X1+ Y1+ Y1-} -> {X1- Y2+ Y2-}")
set_tests_properties(tool_turns PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_design "/root/repo/build/tools/ebda_tool" "design" "--vcs" "1,2" "--all")
set_tests_properties(tool_design PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_space "/root/repo/build/tools/ebda_tool" "space" "--dims" "3")
set_tests_properties(tool_space PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simulate "/root/repo/build/tools/ebda_tool" "simulate" "--scheme" "{X+ X- Y-} -> {Y+}" "--mesh" "4x4" "--rate" "0.05" "--cycles" "800")
set_tests_properties(tool_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_usage "/root/repo/build/tools/ebda_tool")
set_tests_properties(tool_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_compare "/root/repo/build/tools/ebda_tool" "compare" "--scheme" "{X+ X- Y-} -> {Y+}" "--scheme2" "{X1+ Y1+ Y1-} -> {X1- Y2+ Y2-}")
set_tests_properties(tool_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_simulate_json "/root/repo/build/tools/ebda_tool" "simulate" "--scheme" "{X+ X- Y-} -> {Y+}" "--mesh" "4x4" "--rate" "0.05" "--cycles" "600" "--json")
set_tests_properties(tool_simulate_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
