file(REMOVE_RECURSE
  "CMakeFiles/irregular_3d.dir/irregular_3d.cc.o"
  "CMakeFiles/irregular_3d.dir/irregular_3d.cc.o.d"
  "irregular_3d"
  "irregular_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
