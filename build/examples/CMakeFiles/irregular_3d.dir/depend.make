# Empty dependencies file for irregular_3d.
# This may be replaced when dependencies are built.
