# Empty compiler generated dependencies file for simulate_mesh.
# This may be replaced when dependencies are built.
