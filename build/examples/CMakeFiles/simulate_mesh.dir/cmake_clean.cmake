file(REMOVE_RECURSE
  "CMakeFiles/simulate_mesh.dir/simulate_mesh.cc.o"
  "CMakeFiles/simulate_mesh.dir/simulate_mesh.cc.o.d"
  "simulate_mesh"
  "simulate_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
