file(REMOVE_RECURSE
  "CMakeFiles/verify_turn_model.dir/verify_turn_model.cc.o"
  "CMakeFiles/verify_turn_model.dir/verify_turn_model.cc.o.d"
  "verify_turn_model"
  "verify_turn_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_turn_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
