# Empty dependencies file for verify_turn_model.
# This may be replaced when dependencies are built.
