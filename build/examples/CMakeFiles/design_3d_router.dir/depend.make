# Empty dependencies file for design_3d_router.
# This may be replaced when dependencies are built.
