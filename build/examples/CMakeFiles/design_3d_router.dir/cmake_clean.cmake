file(REMOVE_RECURSE
  "CMakeFiles/design_3d_router.dir/design_3d_router.cc.o"
  "CMakeFiles/design_3d_router.dir/design_3d_router.cc.o.d"
  "design_3d_router"
  "design_3d_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_3d_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
