/**
 * @file
 * ebda_sweep — parallel parameter-sweep runner with a persistent,
 * content-addressed result cache.
 *
 * Subcommands:
 *   run    --spec sweep.json [--jobs N] [--cache DIR] [--out FILE]
 *          [--job-timeout SEC] [--job-cycles N] [--no-retry]
 *          [--sched auto|cycle|event]
 *          Expand the spec into its job grid, serve cached points from
 *          --cache (when given), run the rest on N worker threads
 *          (default: all cores), and write one JSONL row per job to
 *          --out (default results.jsonl; '-' = stdout), sorted by job
 *          hash so output is identical for any thread count. Prints
 *          hit/miss/simulated/elapsed counters to stderr.
 *          --job-timeout / --job-cycles set per-job wall-clock and
 *          simulated-cycle budgets; a job that blows one (or trips the
 *          simulator's deadlock watchdog) gets one retry (--no-retry
 *          disables it) and is then quarantined in the cache so later
 *          sweeps serve the record instead of rerunning it.
 *          --sched overrides the scheduling backend for every executed
 *          job (default auto: per-job injection-rate heuristic, see
 *          sim/scheduler.hh). Cache keys never include the mode — the
 *          backends are trace-equivalent, so entries are shared.
 *          --shards overrides SimConfig::shards for every job (0 =
 *          auto, 1 = classic single-thread, N >= 2 = the sharded cycle
 *          backend, sim/shard_sched.hh). The shard count IS part of a
 *          job's identity — a sharded run is a different, equally
 *          valid, simulation — so the override re-finalizes the jobs
 *          and cache entries are keyed per shard count.
 *          SIGINT/SIGTERM stop the sweep gracefully: running jobs
 *          abort, pending jobs are skipped, completed results are
 *          flushed to --out and the cache, a partial summary prints,
 *          and the exit code is 130.
 *   expand --spec sweep.json
 *          Print the job grid (key + human label) without running.
 *   cache stats   --cache DIR
 *   cache clear   --cache DIR
 *   cache compact --cache DIR
 *          Rewrite the JSONL cache dropping corrupted lines and
 *          superseded duplicate keys (atomic temp-file swap).
 *
 * Exit codes: 0 on success, 1 when any job failed to run, 2 on usage
 * or spec errors. Deadlocked simulations are results, not failures.
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "sim/shard_partition.hh"
#include "sim/sim_json.hh"
#include "sweep/result_cache.hh"
#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"
#include "util/cli.hh"

namespace {

using namespace ebda;

/** Flipped by SIGINT/SIGTERM; polled by running simulations (via the
 *  runner's interrupt flag) and by the job dispatcher. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onSignal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

int
usage()
{
    std::cerr <<
        "usage: ebda_sweep <run|expand|cache> [options]\n"
        "  run    --spec sweep.json [--jobs N] [--cache DIR]\n"
        "         [--out results.jsonl] [--job-timeout SEC]\n"
        "         [--job-cycles N] [--no-retry]\n"
        "         [--sched auto|cycle|event] [--shards N]\n"
        "  expand --spec sweep.json\n"
        "  cache  stats --cache DIR\n"
        "  cache  clear --cache DIR\n"
        "  cache  compact --cache DIR\n";
    return 2;
}

std::optional<sweep::SweepSpec>
loadSpec(const Args &args)
{
    const auto path = args.get("spec");
    if (path.empty()) {
        std::cerr << "missing --spec\n";
        return std::nullopt;
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open spec file '" << path << "'\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    auto spec = sweep::SweepSpec::parse(text.str(), &err);
    if (!spec)
        std::cerr << "bad spec: " << err << '\n';
    return spec;
}

std::string
jobLabel(const sweep::SweepJob &job)
{
    return job.topo.toString() + " | " + job.router + " | "
           + sim::toString(job.pattern) + " | "
           + sim::toString(job.cfg.selection) + " | rate "
           + std::to_string(job.cfg.injectionRate);
}

int
cmdRun(const Args &args)
{
    const auto spec = loadSpec(args);
    if (!spec)
        return 2;
    auto jobs = spec->expand();
    if (jobs.empty()) {
        std::cerr << "spec expands to zero jobs\n";
        return 2;
    }
    if (args.has("shards")) {
        // Unlike --sched, the shard count is part of each job's
        // identity (a sharded run is a different — equally valid —
        // simulation), so the override re-finalizes every job: cache
        // keys change and entries are NOT shared with unsharded runs.
        const long long s = args.getInt("shards", -1);
        if (s < 0 || s > sim::kMaxShards) {
            std::cerr << "--shards must be in [0, " << sim::kMaxShards
                      << "] (0 = auto)\n";
            return 2;
        }
        for (auto &job : jobs) {
            job.cfg.shards = static_cast<int>(s);
            sweep::finalizeJob(job);
        }
    }

    sweep::RunOptions opts;
    opts.threads = static_cast<int>(args.getInt("jobs", 0));
    opts.jobWallClockBudgetSeconds = args.getDouble("job-timeout", 0.0);
    opts.jobCycleBudget =
        static_cast<std::uint64_t>(args.getInt("job-cycles", 0));
    if (args.has("no-retry"))
        opts.watchdogRetries = 0;
    opts.interruptFlag = &g_interrupted;
    if (args.has("sched")) {
        const auto mode = sim::schedModeFromString(args.get("sched"));
        if (!mode) {
            std::cerr << "--sched must be auto, cycle or event\n";
            return 2;
        }
        opts.schedMode = *mode;
    }
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    if (opts.jobWallClockBudgetSeconds < 0.0) {
        std::cerr << "--job-timeout must be >= 0\n";
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::unique_ptr<sweep::ResultCache> cache;
    const auto cache_dir = args.get("cache");
    if (!cache_dir.empty()) {
        cache = std::make_unique<sweep::ResultCache>(cache_dir);
        opts.cache = cache.get();
        if (cache->corruptedLines() > 0)
            std::cerr << "warning: skipped " << cache->corruptedLines()
                      << " corrupted cache line(s)\n";
    }

    std::cerr << (spec->name.empty() ? std::string("sweep")
                                     : spec->name)
              << ": " << jobs.size() << " job(s)\n";

    const auto report = sweep::runSweep(jobs, opts);

    const auto out_path = args.get("out", "results.jsonl");
    if (out_path == "-") {
        sweep::writeResultsJsonl(jobs, report.outcomes, std::cout);
    } else {
        std::ofstream out(out_path, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write '" << out_path << "'\n";
            return 1;
        }
        sweep::writeResultsJsonl(jobs, report.outcomes, out);
    }

    std::uint64_t deadlocked = 0;
    for (const auto &o : report.outcomes)
        if (o.ok && o.result.deadlocked)
            ++deadlocked;

    if (report.interrupted)
        std::cerr << "interrupted: " << report.skipped
                  << " job(s) skipped; completed results were "
                     "written\n";

    std::cerr << "threads " << report.threads << " | simulated "
              << report.simulated << " | cache hits " << report.cacheHits
              << " / misses " << report.cacheMisses << " | deadlocked "
              << deadlocked << " | quarantined " << report.quarantined
              << " | retried " << report.retried << " | failed "
              << report.failed << " | skipped " << report.skipped
              << " | " << report.elapsedSeconds << " s\n";

    // The persistent cache's state after this sweep (the summary
    // line's hit/miss counters only cover this run).
    if (cache)
        std::cerr << "cache " << cache_dir << ": "
                  << report.cacheHits << " hit(s), "
                  << report.cacheMisses << " miss(es) this run | now "
                  << cache->entries() << " entr"
                  << (cache->entries() == 1 ? "y" : "ies") << ", "
                  << cache->quarantinedEntries() << " quarantined\n";

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &o = report.outcomes[i];
        if (!o.ok && !o.skipped)
            std::cerr << "FAILED " << jobLabel(jobs[i]) << ": "
                      << o.error << '\n';
        else if (o.quarantined)
            std::cerr << "QUARANTINED " << jobLabel(jobs[i]) << ": "
                      << o.error << '\n';
    }

    if (report.interrupted)
        return 130;
    return report.failed == 0 ? 0 : 1;
}

int
cmdExpand(const Args &args)
{
    const auto spec = loadSpec(args);
    if (!spec)
        return 2;
    const auto jobs = spec->expand();
    for (const auto &job : jobs)
        std::cout << sweep::keyToHex(job.key) << "  " << jobLabel(job)
                  << '\n';
    std::cout << jobs.size() << " job(s)\n";
    return 0;
}

int
cmdCacheStats(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    sweep::ResultCache cache(dir);
    std::cout << "cache " << dir << ": " << cache.entries()
              << " entries";
    if (cache.quarantinedEntries() > 0)
        std::cout << " (" << cache.quarantinedEntries()
                  << " quarantined)";
    if (cache.corruptedLines() > 0)
        std::cout << " (" << cache.corruptedLines()
                  << " corrupted lines skipped)";
    std::cout << '\n';
    return 0;
}

int
cmdCacheClear(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    std::string err;
    if (!sweep::ResultCache::clear(dir, &err)) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cout << "cleared " << dir << '\n';
    return 0;
}

int
cmdCacheCompact(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    std::string err;
    const auto stats = sweep::ResultCache::compact(dir, &err);
    if (!stats) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cout << "compacted " << dir << ": kept " << stats->kept
              << ", dropped " << stats->droppedCorrupted
              << " corrupted + " << stats->droppedDuplicate
              << " duplicate line(s)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    int first = 2;
    std::string sub;
    if (cmd == "cache") {
        if (argc < 3)
            return usage();
        sub = argv[2];
        first = 3;
    }

    Args args(argc, argv, first);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return usage();
    }

    try {
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "expand")
            return cmdExpand(args);
        if (cmd == "cache" && sub == "stats")
            return cmdCacheStats(args);
        if (cmd == "cache" && sub == "clear")
            return cmdCacheClear(args);
        if (cmd == "cache" && sub == "compact")
            return cmdCacheCompact(args);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return usage();
}
