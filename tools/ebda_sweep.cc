/**
 * @file
 * ebda_sweep — parallel parameter-sweep runner with a persistent,
 * content-addressed result cache (binary record store + hash index,
 * mmap-served; see src/sweep/result_cache.hh).
 *
 * Subcommands:
 *   run    --spec sweep.json [--jobs N] [--cache DIR] [--out FILE]
 *          [--job-timeout SEC] [--job-cycles N] [--no-retry]
 *          [--sched auto|cycle|event] [--shards N]
 *          [--order cost|spec] [--resume]
 *          Expand the spec into its job grid, serve cached points from
 *          --cache (when given), run the rest on N worker threads
 *          (default: all cores), and write one JSONL row per job to
 *          --out (default results.jsonl; '-' = stdout), sorted by job
 *          hash so output is identical for any thread count and job
 *          order. Prints hit/miss/simulated/elapsed counters and the
 *          cache-blocked time to stderr.
 *          --job-timeout / --job-cycles set per-job wall-clock and
 *          simulated-cycle budgets; a job that blows one (or trips the
 *          simulator's deadlock watchdog) gets one retry (--no-retry
 *          disables it) and is then quarantined in the cache so later
 *          sweeps serve the record instead of rerunning it.
 *          --sched overrides the scheduling backend for every executed
 *          job (default auto: per-job injection-rate heuristic, see
 *          sim/scheduler.hh). Cache keys never include the mode — the
 *          backends are trace-equivalent, so entries are shared.
 *          --shards overrides SimConfig::shards for every job (0 =
 *          auto). The shard count IS part of a job's identity, so the
 *          override re-finalizes the jobs and cache entries are keyed
 *          per shard count.
 *          --order picks the schedule jobs are pulled in: cost
 *          (default) runs longest-expected-first through guided
 *          chunked self-scheduling — the cost model is a nodes ×
 *          cycles prior calibrated by measured per-key wall-clocks
 *          from the cache — which collapses the straggler tail on
 *          heterogeneous grids; spec is the original index order.
 *          Results are bit-identical either way (jobs are hermetic).
 *          With --cache, the run checkpoints a sweep manifest (spec
 *          key + per-job completion bitmap) next to the cache.
 *          SIGINT/SIGTERM stop the sweep gracefully: running jobs
 *          abort, pending jobs are skipped, completed results are
 *          flushed to --out and the cache, the exact resume command is
 *          printed, and the exit code is 130. --resume reloads the
 *          manifest and re-simulates only the incomplete jobs (the
 *          content-addressed cache serves the finished ones).
 *   refine --spec sweep.json [--threshold CYCLES | --knee-factor F]
 *          [--tolerance T] [--max-rounds N] [run options]
 *          Adaptive saturation search: treat each (topology, router,
 *          pattern, selection) combination as one curve, take the
 *          spec's rate axis min/max as the bracket, and bisect toward
 *          the saturation knee (latency crossing the threshold —
 *          absolute --threshold, or --knee-factor × the low-end
 *          latency — or deadlock / failed drain / quarantine) instead
 *          of burning cores on flat grid regions. Every evaluated
 *          point is a regular sweep job with the grid's cache key, and
 *          --out (default refine.jsonl) gets the standard JSONL rows.
 *   expand --spec sweep.json
 *          Print the job grid (key + human label) without running.
 *   cache stats   --cache DIR
 *          Record/index/quarantine counts and file sizes straight from
 *          the persisted index — no result payloads are loaded.
 *   cache clear   --cache DIR
 *   cache compact --cache DIR
 *          Rewrite the record store dropping superseded duplicate keys
 *          (atomic temp-file swap); reports reclaimed bytes.
 *   cache export  --cache DIR --out FILE
 *   cache import  --cache DIR --in FILE
 *          Round-trip the store through the legacy JSONL line format
 *          (the PR-1 cache.jsonl layout) for inspection or transport.
 *          A legacy cache.jsonl found in DIR by any command migrates
 *          into the record store transparently, once (the file is
 *          renamed to cache.jsonl.migrated; keys are unchanged).
 *
 * Exit codes: 0 on success, 1 when any job failed to run, 2 on usage
 * or spec errors, 130 on interrupt. Deadlocked simulations are
 * results, not failures.
 */

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "sim/shard_partition.hh"
#include "sim/sim_json.hh"
#include "sweep/manifest.hh"
#include "sweep/refine.hh"
#include "sweep/result_cache.hh"
#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"
#include "util/cli.hh"

namespace {

using namespace ebda;

/** Flipped by SIGINT/SIGTERM; polled by running simulations (via the
 *  runner's interrupt flag) and by the job dispatcher. */
std::atomic<bool> g_interrupted{false};

extern "C" void
onSignal(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

int
usage()
{
    std::cerr <<
        "usage: ebda_sweep <run|refine|expand|cache> [options]\n"
        "  run    --spec sweep.json [--jobs N] [--cache DIR]\n"
        "         [--out results.jsonl] [--job-timeout SEC]\n"
        "         [--job-cycles N] [--no-retry]\n"
        "         [--sched auto|cycle|event] [--shards N]\n"
        "         [--order cost|spec] [--resume]\n"
        "  refine --spec sweep.json [--threshold CYCLES]\n"
        "         [--knee-factor F] [--tolerance T] [--max-rounds N]\n"
        "         [--jobs N] [--cache DIR] [--out refine.jsonl]\n"
        "         [--job-timeout SEC] [--job-cycles N] [--no-retry]\n"
        "         [--sched auto|cycle|event]\n"
        "  expand --spec sweep.json\n"
        "  cache  stats --cache DIR\n"
        "  cache  clear --cache DIR\n"
        "  cache  compact --cache DIR\n"
        "  cache  export --cache DIR --out FILE\n"
        "  cache  import --cache DIR --in FILE\n";
    return 2;
}

std::optional<sweep::SweepSpec>
loadSpec(const Args &args)
{
    const auto path = args.get("spec");
    if (path.empty()) {
        std::cerr << "missing --spec\n";
        return std::nullopt;
    }
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open spec file '" << path << "'\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string err;
    auto spec = sweep::SweepSpec::parse(text.str(), &err);
    if (!spec)
        std::cerr << "bad spec: " << err << '\n';
    return spec;
}

std::string
jobLabel(const sweep::SweepJob &job)
{
    return job.topo.toString() + " | " + job.router + " | "
           + sim::toString(job.pattern) + " | "
           + sim::toString(job.cfg.selection) + " | rate "
           + std::to_string(job.cfg.injectionRate);
}

/** Shared run/refine option parsing (threads, budgets, sched mode).
 *  Returns false (with a message) on a bad value. */
bool
parseRunOptions(const Args &args, sweep::RunOptions *opts)
{
    opts->threads = static_cast<int>(args.getInt("jobs", 0));
    opts->jobWallClockBudgetSeconds = args.getDouble("job-timeout", 0.0);
    opts->jobCycleBudget =
        static_cast<std::uint64_t>(args.getInt("job-cycles", 0));
    if (args.has("no-retry"))
        opts->watchdogRetries = 0;
    opts->interruptFlag = &g_interrupted;
    if (args.has("sched")) {
        const auto mode = sim::schedModeFromString(args.get("sched"));
        if (!mode) {
            std::cerr << "--sched must be auto, cycle or event\n";
            return false;
        }
        opts->schedMode = *mode;
    }
    if (args.has("order")) {
        const auto order = args.get("order");
        if (order == "cost")
            opts->order = sweep::JobOrder::CostDescending;
        else if (order == "spec")
            opts->order = sweep::JobOrder::Spec;
        else {
            std::cerr << "--order must be cost or spec\n";
            return false;
        }
    }
    if (opts->jobWallClockBudgetSeconds < 0.0) {
        std::cerr << "--job-timeout must be >= 0\n";
        return false;
    }
    return true;
}

/** The exact command that resumes an interrupted sweep: the flags that
 *  shape the job grid and execution, plus --resume. */
std::string
resumeCommand(const Args &args)
{
    std::string cmd = "ebda_sweep run --spec " + args.get("spec");
    for (const char *flag :
         {"cache", "out", "jobs", "job-timeout", "job-cycles", "sched",
          "shards", "order"}) {
        if (args.has(flag))
            cmd += std::string(" --") + flag + " " + args.get(flag);
    }
    if (args.has("no-retry"))
        cmd += " --no-retry";
    cmd += " --resume";
    return cmd;
}

int
cmdRun(const Args &args)
{
    const auto spec = loadSpec(args);
    if (!spec)
        return 2;
    auto jobs = spec->expand();
    if (jobs.empty()) {
        std::cerr << "spec expands to zero jobs\n";
        return 2;
    }
    if (args.has("shards")) {
        // Unlike --sched, the shard count is part of each job's
        // identity (a sharded run is a different — equally valid —
        // simulation), so the override re-finalizes every job: cache
        // keys change and entries are NOT shared with unsharded runs.
        const long long s = args.getInt("shards", -1);
        if (s < 0 || s > sim::kMaxShards) {
            std::cerr << "--shards must be in [0, " << sim::kMaxShards
                      << "] (0 = auto)\n";
            return 2;
        }
        for (auto &job : jobs) {
            job.cfg.shards = static_cast<int>(s);
            sweep::finalizeJob(job);
        }
    }

    sweep::RunOptions opts;
    if (!parseRunOptions(args, &opts))
        return 2;
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::unique_ptr<sweep::ResultCache> cache;
    const auto cache_dir = args.get("cache");
    if (args.has("resume") && cache_dir.empty()) {
        std::cerr << "--resume needs --cache (the manifest and the "
                     "results live there)\n";
        return 2;
    }
    if (!cache_dir.empty()) {
        cache = std::make_unique<sweep::ResultCache>(cache_dir);
        opts.cache = cache.get();
        if (cache->migratedEntries() > 0)
            std::cerr << "cache " << cache_dir << ": migrated "
                      << cache->migratedEntries()
                      << " legacy JSONL entr"
                      << (cache->migratedEntries() == 1 ? "y" : "ies")
                      << " into the record store\n";
        if (cache->corruptedLines() > 0)
            std::cerr << "warning: skipped " << cache->corruptedLines()
                      << " corrupted cache entr"
                      << (cache->corruptedLines() == 1 ? "y" : "ies")
                      << '\n';
    }

    // Checkpoint manifest: bound to this exact expanded job list (the
    // spec key covers every job key, post --shards), saved as jobs
    // conclude. A stale manifest — edited spec, different shards — is
    // rejected on --resume and the sweep starts fresh (the cache still
    // serves whatever matches).
    std::unique_ptr<sweep::SweepManifest> manifest;
    if (cache) {
        manifest = std::make_unique<sweep::SweepManifest>(
            cache_dir, sweep::SweepManifest::specKey(jobs), jobs.size());
        if (args.has("resume")) {
            std::string err;
            if (manifest->load(&err))
                std::cerr << "resuming: " << manifest->completed() << "/"
                          << manifest->jobs()
                          << " job(s) already complete\n";
            else
                std::cerr << "note: " << err
                          << "; starting from the cache alone\n";
        }
        opts.manifest = manifest.get();
    }

    std::cerr << (spec->name.empty() ? std::string("sweep")
                                     : spec->name)
              << ": " << jobs.size() << " job(s)\n";

    const auto report = sweep::runSweep(jobs, opts);

    const auto out_path = args.get("out", "results.jsonl");
    if (out_path == "-") {
        sweep::writeResultsJsonl(jobs, report.outcomes, std::cout);
    } else {
        std::ofstream out(out_path, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write '" << out_path << "'\n";
            return 1;
        }
        sweep::writeResultsJsonl(jobs, report.outcomes, out);
    }

    std::uint64_t deadlocked = 0;
    for (const auto &o : report.outcomes)
        if (o.ok && o.result.deadlocked)
            ++deadlocked;

    if (report.interrupted) {
        std::cerr << "interrupted: " << report.skipped
                  << " job(s) skipped; completed results were "
                     "written\n";
        if (manifest)
            std::cerr << "resume with:\n  " << resumeCommand(args)
                      << '\n';
    } else if (manifest
               && manifest->completed() == manifest->jobs()) {
        manifest->remove(); // sweep complete; checkpoint obsolete
    }

    std::cerr << "threads " << report.threads << " | simulated "
              << report.simulated << " | cache hits " << report.cacheHits
              << " / misses " << report.cacheMisses << " | deadlocked "
              << deadlocked << " | quarantined " << report.quarantined
              << " | retried " << report.retried << " | failed "
              << report.failed << " | skipped " << report.skipped
              << " | cache-blocked " << report.cacheBlockedSeconds
              << " s | " << report.elapsedSeconds << " s\n";

    // The persistent cache's state after this sweep (the summary
    // line's hit/miss counters only cover this run).
    if (cache)
        std::cerr << "cache " << cache_dir << ": "
                  << report.cacheHits << " hit(s), "
                  << report.cacheMisses << " miss(es) this run | now "
                  << cache->entries() << " entr"
                  << (cache->entries() == 1 ? "y" : "ies") << ", "
                  << cache->quarantinedEntries() << " quarantined\n";

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto &o = report.outcomes[i];
        if (!o.ok && !o.skipped)
            std::cerr << "FAILED " << jobLabel(jobs[i]) << ": "
                      << o.error << '\n';
        else if (o.quarantined)
            std::cerr << "QUARANTINED " << jobLabel(jobs[i]) << ": "
                      << o.error << '\n';
    }

    if (report.interrupted)
        return 130;
    return report.failed == 0 ? 0 : 1;
}

int
cmdRefine(const Args &args)
{
    const auto spec = loadSpec(args);
    if (!spec)
        return 2;

    sweep::RefineOptions opts;
    opts.latencyThreshold = args.getDouble("threshold", 0.0);
    opts.kneeFactor = args.getDouble("knee-factor", 3.0);
    opts.tolerance = args.getDouble("tolerance", 0.005);
    opts.maxRounds = static_cast<int>(args.getInt("max-rounds", 16));
    if (!parseRunOptions(args, &opts.run))
        return 2;
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    if (opts.kneeFactor <= 1.0) {
        std::cerr << "--knee-factor must be > 1\n";
        return 2;
    }
    if (opts.tolerance <= 0.0) {
        std::cerr << "--tolerance must be > 0\n";
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::unique_ptr<sweep::ResultCache> cache;
    const auto cache_dir = args.get("cache");
    if (!cache_dir.empty()) {
        cache = std::make_unique<sweep::ResultCache>(cache_dir);
        opts.run.cache = cache.get();
    }

    std::cerr << (spec->name.empty() ? std::string("refine")
                                     : "refine " + spec->name)
              << ": " << spec->topologies.size() * spec->routers.size()
                         * spec->patterns.size()
                         * spec->selections.size()
              << " curve(s)\n";

    const auto report = sweep::refineSweep(*spec, opts);

    const auto out_path = args.get("out", "refine.jsonl");
    if (out_path == "-") {
        sweep::writeResultsJsonl(report.jobs, report.outcomes,
                                 std::cout);
    } else {
        std::ofstream out(out_path, std::ios::trunc);
        if (!out) {
            std::cerr << "cannot write '" << out_path << "'\n";
            return 1;
        }
        sweep::writeResultsJsonl(report.jobs, report.outcomes, out);
    }

    bool anyFailed = false;
    for (const auto &c : report.curves) {
        std::cerr << "  " << c.label << ": ";
        if (c.failed) {
            std::cerr << "FAILED: " << c.error << '\n';
            anyFailed = true;
            continue;
        }
        if (c.saturatedAtLo)
            std::cerr << "saturated at the low end (knee <= " << c.lo
                      << ")";
        else if (c.unsaturatedAtHi)
            std::cerr << "no saturation up to " << c.hi;
        else
            std::cerr << "knee ~ " << c.knee << " in [" << c.lo << ", "
                      << c.hi << "]";
        std::cerr << " | threshold " << c.threshold << " cycles | "
                  << c.points << " point(s)\n";
    }

    std::cerr << "threads " << report.threads << " | simulated "
              << report.simulated << " | points "
              << report.jobs.size() << " | cache-blocked "
              << report.cacheBlockedSeconds << " s | "
              << report.elapsedSeconds << " s\n";

    if (report.interrupted)
        return 130;
    return anyFailed ? 1 : 0;
}

int
cmdExpand(const Args &args)
{
    const auto spec = loadSpec(args);
    if (!spec)
        return 2;
    const auto jobs = spec->expand();
    for (const auto &job : jobs)
        std::cout << sweep::keyToHex(job.key) << "  " << jobLabel(job)
                  << '\n';
    std::cout << jobs.size() << " job(s)\n";
    return 0;
}

int
cmdCacheStats(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    // Index-only: no result payloads are parsed.
    const auto stats = sweep::ResultCache::stats(dir);
    std::cout << "cache " << dir << ": " << stats.records
              << " record(s), " << stats.quarantined
              << " quarantined | store " << stats.fileBytes
              << " B, index " << stats.indexBytes << " B";
    if (stats.tailRecovered > 0)
        std::cout << " | " << stats.tailRecovered
                  << " unindexed record(s) recovered";
    if (stats.tornBytesTruncated > 0)
        std::cout << " | torn tail of " << stats.tornBytesTruncated
                  << " B truncated";
    if (stats.indexRebuilt)
        std::cout << " | index rebuilt";
    if (stats.legacyJsonlPresent)
        std::cout << " | legacy cache.jsonl pending migration";
    std::cout << '\n';
    return 0;
}

int
cmdCacheClear(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    std::string err;
    if (!sweep::ResultCache::clear(dir, &err)) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cout << "cleared " << dir << '\n';
    return 0;
}

int
cmdCacheCompact(const Args &args)
{
    const auto dir = args.get("cache");
    if (dir.empty()) {
        std::cerr << "missing --cache\n";
        return 2;
    }
    std::string err;
    const auto stats = sweep::ResultCache::compact(dir, &err);
    if (!stats) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cout << "compacted " << dir << ": kept " << stats->kept
              << ", dropped " << stats->droppedDuplicate
              << " superseded + " << stats->droppedCorrupted
              << " corrupted record(s), reclaimed "
              << stats->reclaimedBytes << " B\n";
    return 0;
}

int
cmdCacheExport(const Args &args)
{
    const auto dir = args.get("cache");
    const auto out = args.get("out");
    if (dir.empty() || out.empty()) {
        std::cerr << "cache export needs --cache and --out\n";
        return 2;
    }
    std::string err;
    std::size_t exported = 0;
    if (!sweep::ResultCache::exportJsonl(
            dir, out == "-" ? "/dev/stdout" : out, &exported, &err)) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cerr << "exported " << exported << " record(s) to " << out
              << '\n';
    return 0;
}

int
cmdCacheImport(const Args &args)
{
    const auto dir = args.get("cache");
    const auto in = args.get("in");
    if (dir.empty() || in.empty()) {
        std::cerr << "cache import needs --cache and --in\n";
        return 2;
    }
    std::string err;
    const auto stats = sweep::ResultCache::importJsonl(dir, in, &err);
    if (!stats) {
        std::cerr << err << '\n';
        return 1;
    }
    std::cout << "imported " << stats->imported << " record(s)";
    if (stats->corrupted > 0)
        std::cout << " (" << stats->corrupted
                  << " corrupted line(s) skipped)";
    std::cout << " into " << dir << '\n';
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    int first = 2;
    std::string sub;
    if (cmd == "cache") {
        if (argc < 3)
            return usage();
        sub = argv[2];
        first = 3;
    }

    Args args(argc, argv, first);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return usage();
    }

    try {
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "refine")
            return cmdRefine(args);
        if (cmd == "expand")
            return cmdExpand(args);
        if (cmd == "cache" && sub == "stats")
            return cmdCacheStats(args);
        if (cmd == "cache" && sub == "clear")
            return cmdCacheClear(args);
        if (cmd == "cache" && sub == "compact")
            return cmdCacheCompact(args);
        if (cmd == "cache" && sub == "export")
            return cmdCacheExport(args);
        if (cmd == "cache" && sub == "import")
            return cmdCacheImport(args);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return usage();
}
