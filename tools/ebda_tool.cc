/**
 * @file
 * ebda_tool — command-line front end for the EbDa library.
 *
 * Subcommands:
 *   design   --vcs A,B[,C..] [--all] [--max N]
 *            Derive deadlock-free partition schemes for a VC budget
 *            (Algorithm 1; with --all also Arrangements 2/3 and
 *            Algorithm 2 derivations) and rank them by adaptiveness.
 *   verify   --scheme "{X+ X- Y-} -> {Y+}" [--mesh 8x8] [--vcs 1,1]
 *            [--torus]
 *            Validate (Theorem 1), run the Dally oracle, report
 *            connectivity and adaptiveness. Exit code 0 iff valid and
 *            deadlock-free.
 *   turns    --scheme "..."
 *            Print the extracted turn set with theorem provenance.
 *   simulate --scheme "..." [--mesh 8x8] [--vcs 1,1] [--rate 0.2]
 *            [--pattern uniform] [--cycles 4000] [--torus]
 *            Run the wormhole simulator with the scheme's routing.
 *   space    --dims N [--vcs A,B,..]
 *            Report the turn-model design-space size EbDa avoids.
 *   forensics [--router minimal | --scheme "..."] [--mesh 4x4]
 *            [--vcs 1,1] [--torus] [--rate 0.3] [--cycles 2000]
 *            [--watchdog 1000] [--pattern uniform]
 *            Run the simulator until the progress watchdog fires, then
 *            print the stall-attribution breakdown, the hottest
 *            channels, and the deadlock forensic dump: the concrete
 *            wait-for cycle among channels cross-referenced against
 *            the Dally relation-CDG. Exit 0 when a deadlock was caught
 *            and dumped, 1 when the run completed without one.
 *
 * Every command prints a short report to stdout; malformed input exits
 * with code 2 and a message on stderr.
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdg/adaptivity.hh"
#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "cdg/turn_model_enum.hh"
#include "core/derivation.hh"
#include "core/minimal.hh"
#include "core/parse.hh"
#include "routing/ebda_routing.hh"
#include "sim/forensics.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

int
usage()
{
    std::cerr <<
        "usage: ebda_tool "
        "<design|verify|turns|simulate|compare|space|forensics> "
        "[options]\n"
        "  design   --vcs 3,2,3 [--all] [--max N]\n"
        "  verify   --scheme \"{X+ X- Y-} -> {Y+}\" [--mesh 8x8] "
        "[--vcs 1,1] [--torus]\n"
        "  turns    --scheme \"...\"\n"
        "  simulate --scheme \"...\" [--mesh 8x8] [--vcs 1,1] "
        "[--rate 0.2] [--pattern uniform] [--cycles 4000] [--torus]\n"
        "  compare  --scheme \"...\" --scheme2 \"...\"\n"
        "  space    --dims 3 [--vcs 1,1,1]\n"
        "  forensics [--router minimal | --scheme \"...\"] "
        "[--mesh 4x4] [--vcs 1,1] [--torus]\n"
        "           [--rate 0.3] [--cycles 2000] [--watchdog 1000] "
        "[--pattern uniform]\n";
    return 2;
}

/** Infer a VC budget covering the scheme when none is given. */
std::vector<int>
vcsFor(const core::PartitionScheme &scheme, const Args &args,
       std::size_t dims)
{
    if (args.has("vcs")) {
        std::string err;
        if (auto v = core::parseVcList(args.get("vcs"), &err)) {
            v->resize(std::max(v->size(), dims), 1);
            return *v;
        }
        std::cerr << "bad --vcs: " << err << '\n';
        std::exit(2);
    }
    auto v = core::vcsRequired(scheme);
    v.resize(std::max(v.size(), dims), 1);
    for (auto &x : v)
        x = std::max(x, 1);
    return v;
}

topo::Network
networkFor(const core::PartitionScheme &scheme, const Args &args)
{
    std::string err;
    auto dims = core::parseDims(args.get("mesh", "8x8"), &err);
    if (!dims) {
        std::cerr << "bad --mesh: " << err << '\n';
        std::exit(2);
    }
    if (dims->size() < scheme.dimensionSpan()) {
        std::cerr << "scheme uses " << int{scheme.dimensionSpan()}
                  << " dimensions but --mesh has " << dims->size() << '\n';
        std::exit(2);
    }
    const auto vcs = vcsFor(scheme, args, dims->size());
    return args.has("torus") ? topo::Network::torus(*dims, vcs)
                             : topo::Network::mesh(*dims, vcs);
}

core::PartitionScheme
schemeFromArgs(const Args &args)
{
    std::string err;
    const auto scheme = core::parseScheme(args.get("scheme"), &err);
    if (!scheme) {
        std::cerr << "bad --scheme: " << err << '\n';
        std::exit(2);
    }
    return *scheme;
}

int
cmdDesign(const Args &args)
{
    std::string err;
    const auto vcs = core::parseVcList(args.get("vcs", "1,1"), &err);
    if (!vcs) {
        std::cerr << "bad --vcs: " << err << '\n';
        return 2;
    }
    const std::size_t max_schemes =
        static_cast<std::size_t>(std::stoul(args.get("max", "16")));

    std::vector<core::PartitionScheme> schemes;
    if (args.has("all")) {
        core::DerivationOptions opts;
        opts.permuteTransitionOrders = true;
        opts.maxSchemes = 4096;
        schemes = core::deriveAll(*vcs, opts);
    } else {
        schemes.push_back(core::partitionSets(core::makeSets(*vcs)));
    }

    std::vector<int> dims(vcs->size(), 4);
    const auto net = topo::Network::mesh(dims, *vcs);

    // Rank by measured adaptiveness.
    std::vector<std::pair<double, const core::PartitionScheme *>> ranked;
    for (const auto &s : schemes) {
        const auto adapt = cdg::measureAdaptiveness(net, s);
        if (!adapt.disconnectedMinimal)
            ranked.emplace_back(adapt.averageFraction, &s);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    if (ranked.size() > max_schemes)
        ranked.resize(max_schemes);

    TextTable t;
    t.setHeader({"scheme", "partitions", "adaptiveness", "deadlock-free"});
    for (const auto &[adapt, s] : ranked) {
        t.addRow({s->toString(),
                  TextTable::num(static_cast<int>(s->size())),
                  TextTable::num(adapt, 4),
                  cdg::checkDeadlockFree(net, *s).deadlockFree ? "yes"
                                                               : "NO"});
    }
    t.print(std::cout);
    std::cout << ranked.size() << " scheme(s); minimum channels for "
                 "fully adaptive "
              << vcs->size() << "D: "
              << core::minFullyAdaptiveChannels(
                     static_cast<std::uint8_t>(vcs->size()))
              << '\n';
    return 0;
}

int
cmdVerify(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    std::cout << "scheme: " << scheme.toString() << '\n';

    const auto validation = scheme.validate();
    std::cout << "Theorem 1 / disjointness: "
              << (validation.ok ? "OK" : "REJECTED — " + validation.reason)
              << '\n';
    if (!validation.ok)
        return 1;

    const auto net = networkFor(scheme, args);
    const auto verdict = cdg::checkDeadlockFree(net, scheme);
    std::cout << "Dally oracle: "
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << " (" << verdict.numDependencies << " dependencies over "
              << verdict.numChannels << " channels)\n";
    if (!verdict.deadlockFree) {
        std::cout << "witness cycle:\n";
        for (const auto &ch : verdict.witness)
            std::cout << "  " << ch << '\n';
        return 1;
    }

    const routing::EbDaRouting router(
        net, scheme, {},
        net.isTorus() ? routing::EbDaRouting::Mode::ShortestState
                      : routing::EbDaRouting::Mode::Minimal);
    const auto conn = cdg::checkConnectivity(router);
    std::cout << "connectivity: "
              << (conn.connected ? "every pair routable" : "INCOMPLETE")
              << '\n';
    if (!net.isTorus()) {
        const auto adapt = cdg::measureAdaptiveness(net, scheme);
        std::cout << "adaptiveness: " << adapt.averageFraction
                  << (adapt.fullyAdaptive ? " (fully adaptive)" : "")
                  << '\n';
    }
    return conn.connected ? 0 : 1;
}

int
cmdTurns(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    const auto validation = scheme.validate();
    if (!validation.ok) {
        std::cerr << "invalid scheme: " << validation.reason << '\n';
        return 1;
    }
    const auto set = core::TurnSet::extract(scheme);
    TextTable t;
    t.setHeader({"turn", "kind", "origin", "from", "to"});
    for (const auto &turn : set.turns()) {
        t.addRow({turn.compassName(), core::toString(turn.kind),
                  turn.origin == core::TurnOrigin::Theorem1 ? "T1"
                  : turn.origin == core::TurnOrigin::Theorem2 ? "T2"
                                                              : "T3",
                  "P" + std::to_string(turn.fromPartition + 1),
                  "P" + std::to_string(turn.toPartition + 1)});
    }
    t.print(std::cout);
    std::cout << set.count(core::TurnKind::Turn90) << " x 90-degree, "
              << set.count(core::TurnKind::UTurn) << " x U, "
              << set.count(core::TurnKind::ITurn) << " x I\n";
    return 0;
}

int
cmdSimulate(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    const auto validation = scheme.validate();
    if (!validation.ok) {
        std::cerr << "invalid scheme: " << validation.reason << '\n';
        return 1;
    }
    const auto net = networkFor(scheme, args);

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }

    const routing::EbDaRouting router(
        net, scheme, {},
        net.isTorus() ? routing::EbDaRouting::Mode::ShortestState
                      : routing::EbDaRouting::Mode::Minimal);
    const sim::TrafficGenerator gen(net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.2);
    cfg.measureCycles = args.getU64("cycles", 4000);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    const auto result = sim::runSimulation(net, router, gen, cfg);

    if (args.has("json")) {
        JsonWriter w;
        w.beginObject();
        w.field("scheme", scheme.toString());
        w.field("pattern", sim::toString(*pattern));
        w.beginObject("config");
        sim::jsonFields(w, cfg);
        w.end();
        w.beginObject("result");
        sim::jsonFields(w, result);
        w.end();
        w.end();
        std::cout << w.str() << '\n';
        return result.deadlocked ? 1 : 0;
    }

    if (result.deadlocked) {
        std::cout << "DEADLOCK detected by the watchdog\n";
        return 1;
    }
    std::cout << "packets measured: " << result.packetsMeasured
              << "\navg latency: " << result.avgLatency << " cycles (p99 "
              << result.p99Latency << ")\navg hops: " << result.avgHops
              << "\naccepted: " << result.acceptedRate
              << " flits/node/cycle (offered " << result.offeredRate
              << ")\nchannel load CV: " << result.channelLoadCv << '\n';
    return 0;
}

int
cmdForensics(const Args &args)
{
    // Network + router: either an EbDa scheme (like simulate) or a
    // sweep router-factory spec (default: the deadlock-prone
    // unrestricted minimal-adaptive negative control).
    std::unique_ptr<cdg::RoutingRelation> owned;
    const cdg::RoutingRelation *router = nullptr;
    std::optional<topo::Network> net;
    std::optional<routing::EbDaRouting> ebda_router;
    if (args.has("scheme")) {
        const auto scheme = schemeFromArgs(args);
        const auto validation = scheme.validate();
        if (!validation.ok) {
            std::cerr << "invalid scheme: " << validation.reason << '\n';
            return 2;
        }
        net = networkFor(scheme, args);
        ebda_router.emplace(
            *net, scheme, core::TurnExtractionOptions{},
            net->isTorus() ? routing::EbDaRouting::Mode::ShortestState
                           : routing::EbDaRouting::Mode::Minimal);
        router = &*ebda_router;
    } else {
        std::string err;
        const auto dims = core::parseDims(args.get("mesh", "4x4"), &err);
        if (!dims) {
            std::cerr << "bad --mesh: " << err << '\n';
            return 2;
        }
        auto vcs = core::parseVcList(args.get("vcs", "1,1"), &err);
        if (!vcs) {
            std::cerr << "bad --vcs: " << err << '\n';
            return 2;
        }
        vcs->resize(std::max(vcs->size(), dims->size()), 1);
        net = args.has("torus") ? topo::Network::torus(*dims, *vcs)
                                : topo::Network::mesh(*dims, *vcs);
        owned = sweep::makeRouter(*net, args.get("router", "minimal"),
                                  &err);
        if (!owned) {
            std::cerr << err << '\n';
            return 2;
        }
        router = owned.get();
    }

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }
    const sim::TrafficGenerator gen(*net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.3);
    cfg.measureCycles = args.getU64("cycles", 2000);
    cfg.watchdogCycles = args.getU64("watchdog", 1000);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    sim::Simulator simulator(*net, *router, gen, cfg);
    const auto result = simulator.run();

    std::cout << router->name() << " on " << net->numNodes()
              << " nodes, rate " << cfg.injectionRate << ": ran "
              << result.cycles << " cycles, "
              << (result.deadlocked ? "DEADLOCKED" : "no deadlock")
              << "\n\nstall attribution (stall-cycles, whole run):\n";
    TextTable stalls;
    stalls.setHeader({"stage", "stall-cycles"});
    stalls.addRow({"route-compute",
                   std::to_string(result.stallRouteCompute)});
    stalls.addRow({"vc-starved", std::to_string(result.stallVcStarved)});
    stalls.addRow({"credit-starved",
                   std::to_string(result.stallCreditStarved)});
    stalls.addRow({"switch-lost",
                   std::to_string(result.stallSwitchLost)});
    stalls.print(std::cout);
    std::cout << "hottest router: node " << result.hottestRouter << " ("
              << result.hottestRouterStalls << " stall-cycles)\n";

    // Top occupied channels (time-weighted mean).
    const auto occ = simulator.channelOccupancy();
    std::vector<topo::ChannelId> by_occ(occ.size());
    for (topo::ChannelId c = 0; c < occ.size(); ++c)
        by_occ[c] = c;
    std::sort(by_occ.begin(), by_occ.end(),
              [&](topo::ChannelId a, topo::ChannelId b) {
                  return occ[a].mean > occ[b].mean;
              });
    std::cout << "\nbusiest channels (mean occupancy / peak, of depth "
              << cfg.vcDepth << "):\n";
    for (std::size_t k = 0; k < std::min<std::size_t>(5, by_occ.size());
         ++k) {
        const topo::ChannelId c = by_occ[k];
        std::cout << "  " << net->channelName(c) << ": "
                  << occ[c].mean << " / " << occ[c].peak << '\n';
    }

    if (!result.deadlocked) {
        std::cout << "\nno deadlock caught; nothing to dissect\n";
        return 1;
    }
    std::cout << '\n' << simulator.forensics().describe(*net);
    return 0;
}

int
cmdCompare(const Args &args)
{
    std::string err;
    const auto a = core::parseScheme(args.get("scheme"), &err);
    if (!a) {
        std::cerr << "bad --scheme: " << err << '\n';
        return 2;
    }
    const auto b = core::parseScheme(args.get("scheme2"), &err);
    if (!b) {
        std::cerr << "bad --scheme2: " << err << '\n';
        return 2;
    }

    TextTable t;
    t.setHeader({"metric", "scheme A", "scheme B"});
    t.addRow({"scheme", a->toString(), b->toString()});

    const auto va = a->validate();
    const auto vb = b->validate();
    t.addRow({"Theorem 1", va.ok ? "OK" : va.reason,
              vb.ok ? "OK" : vb.reason});
    if (!va.ok || !vb.ok) {
        t.print(std::cout);
        return 1;
    }

    auto dims_needed = std::max(a->dimensionSpan(), b->dimensionSpan());
    std::vector<int> vcs_a = core::vcsRequired(*a);
    std::vector<int> vcs_b = core::vcsRequired(*b);
    std::vector<int> vcs(dims_needed, 1);
    for (std::size_t d = 0; d < vcs.size(); ++d) {
        if (d < vcs_a.size())
            vcs[d] = std::max(vcs[d], vcs_a[d]);
        if (d < vcs_b.size())
            vcs[d] = std::max(vcs[d], vcs_b[d]);
    }
    std::vector<int> dims(dims_needed, 5);
    const auto net = topo::Network::mesh(dims, vcs);

    auto row = [&](const char *label, auto fn) {
        t.addRow({label, fn(*a), fn(*b)});
    };
    row("channels", [](const core::PartitionScheme &s) {
        return TextTable::num(s.numClasses());
    });
    row("90-degree turns", [](const core::PartitionScheme &s) {
        return TextTable::num(
            core::TurnSet::extract(s).count(core::TurnKind::Turn90));
    });
    row("deadlock-free", [&](const core::PartitionScheme &s) {
        return std::string(
            cdg::checkDeadlockFree(net, s).deadlockFree ? "yes" : "NO");
    });
    row("adaptiveness", [&](const core::PartitionScheme &s) {
        return TextTable::num(
            cdg::measureAdaptiveness(net, s).averageFraction, 4);
    });
    row("fully adaptive", [&](const core::PartitionScheme &s) {
        return std::string(
            cdg::measureAdaptiveness(net, s).fullyAdaptive ? "yes"
                                                           : "no");
    });
    t.print(std::cout);
    return 0;
}

int
cmdSpace(const Args &args)
{
    const int n = std::stoi(args.get("dims", "2"));
    if (n < 2 || n > 16) {
        std::cerr << "--dims out of range\n";
        return 2;
    }
    std::vector<int> vcs(static_cast<std::size_t>(n), 1);
    if (args.has("vcs")) {
        std::string err;
        const auto v = core::parseVcList(args.get("vcs"), &err);
        if (!v || v->size() != static_cast<std::size_t>(n)) {
            std::cerr << "bad --vcs\n";
            return 2;
        }
        vcs = *v;
    }
    const auto space =
        cdg::turnModelSpace(static_cast<std::uint8_t>(n), vcs);
    std::cout << "abstract cycles: " << space.numCycles
              << "\nturn-model combinations to examine: 4^"
              << space.numCycles << " = " << space.numCombinations
              << "\nEbDa: one direct construction, e.g. mergedScheme("
              << n << ") with "
              << core::minFullyAdaptiveChannels(
                     static_cast<std::uint8_t>(n))
              << " channels\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return usage();
    }

    try {
        if (cmd == "design")
            return cmdDesign(args);
        if (cmd == "verify")
            return cmdVerify(args);
        if (cmd == "turns")
            return cmdTurns(args);
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "space")
            return cmdSpace(args);
        if (cmd == "forensics")
            return cmdForensics(args);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }
    return usage();
}
