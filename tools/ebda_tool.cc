/**
 * @file
 * ebda_tool — command-line front end for the EbDa library.
 *
 * Subcommands:
 *   design   --vcs A,B[,C..] [--all] [--max N]
 *            Derive deadlock-free partition schemes for a VC budget
 *            (Algorithm 1; with --all also Arrangements 2/3 and
 *            Algorithm 2 derivations) and rank them by adaptiveness.
 *   verify   --scheme "{X+ X- Y-} -> {Y+}" [--mesh 8x8] [--vcs 1,1]
 *            [--torus]
 *            Validate (Theorem 1), run the Dally oracle, report
 *            connectivity and adaptiveness. Exit code 0 iff valid and
 *            deadlock-free.
 *   turns    --scheme "..."
 *            Print the extracted turn set with theorem provenance.
 *   simulate --scheme "..." [--mesh 8x8] [--vcs 1,1] [--rate 0.2]
 *            [--pattern uniform] [--cycles 4000] [--torus]
 *            [--watchdog C] [--recovery-passes N]
 *            [--sched auto|cycle|event] [--json]
 *            Run the wormhole simulator with the scheme's routing.
 *            --sched picks the scheduling backend (sim/scheduler.hh);
 *            auto resolves from the injection rate and fabric size.
 *            --watchdog sets the progress-watchdog window,
 *            --recovery-passes the escalation budget before a wedge
 *            is declared.
 *   space    --dims N [--vcs A,B,..]
 *            Report the turn-model design-space size EbDa avoids.
 *   forensics [--router minimal | --scheme "..."] [--mesh 4x4]
 *            [--vcs 1,1] [--torus] [--rate 0.3] [--cycles 2000]
 *            [--watchdog 1000] [--pattern uniform]
 *            Run the simulator until the progress watchdog fires, then
 *            print the stall-attribution breakdown, the hottest
 *            channels, and the deadlock forensic dump: the concrete
 *            wait-for cycle among channels cross-referenced against
 *            the Dally relation-CDG. Exit 0 when a deadlock was caught
 *            and dumped, 1 when the run completed without one.
 *   topo     [--dragonfly a,p,h | --fullmesh N | --mesh 4x4 [--torus]
 *            | --map-file FILE | --map "..."] [--vcs ...]
 *            [--router SPEC]
 *            Print topology statistics (nodes, links, channels, degree,
 *            diameter), the raw-graph routing-existence verdict, and —
 *            for the chosen routing engine — the Dally relation-CDG
 *            oracle, the Mendlovic–Matias fixpoint checker, their
 *            agreement, and routing connectivity. Exit 0 iff the
 *            relation is deadlock-free under both checkers and
 *            connected.
 *   faults   [--router SPEC | --scheme "..."] [--mesh 4x4] [--vcs 1,1]
 *            [--torus] [--rate 0.1] [--cycles 4000] [--watchdog 2000]
 *            [--link-faults N] [--node-faults N] [--fault-seed S]
 *            [--fault-start C] [--fault-spacing C]
 *            [--events "C:link:SRC->DST;C:node:N;..."] [--json]
 *            Run the simulator under a runtime fault schedule: print
 *            the materialized schedule, then the degradation report —
 *            delivery fraction, drops / retransmits / losses, recovery
 *            passes, and the per-event degraded-CDG oracle verdicts.
 *            Exit 0 when the run degraded gracefully, 1 when it
 *            wedged (forensics printed), 2 on usage errors.
 *   protocol [--router SPEC | --scheme "..."] [--mesh 4x4] [--vcs 2,2]
 *            [--torus] [--rate 0.3] [--cycles 4000] [--watchdog 1000]
 *            [--depth N] [--service-latency C] [--service-jitter C]
 *            [--classes 1|2] [--reserve] [--recovery-passes N]
 *            [--pattern uniform] [--json]
 *            Run the request–reply protocol layer on a Dally-verified
 *            fabric: finite per-node reply buffers plus a service
 *            latency make message-dependency deadlock reachable with
 *            --classes 1; --classes 2 carves a reply VC class as the
 *            escape and --reserve throttles requests against local
 *            reply-buffer space instead. Prints the endpoint report;
 *            on a wedge, the cross-message wait-for cycle with the
 *            protocol-vs-channel classification and the channel-level
 *            oracle cross-check. Exit 0 when the run completed, 1 on
 *            a protocol wedge (forensics printed), 2 on usage errors.
 *
 * Every command prints a short report to stdout; malformed input exits
 * with code 2 and a message on stderr.
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "cdg/adaptivity.hh"
#include "cdg/mm_check.hh"
#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "cdg/turn_model_enum.hh"
#include "graph/digraph.hh"
#include "topo/ascii_map.hh"
#include "core/derivation.hh"
#include "core/minimal.hh"
#include "core/parse.hh"
#include "routing/ebda_routing.hh"
#include "sim/forensics.hh"
#include "sim/shard_partition.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"
#include "util/cli.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

using namespace ebda;

int
usage()
{
    std::cerr <<
        "usage: ebda_tool "
        "<design|verify|turns|simulate|compare|space|topo|forensics|"
        "faults|protocol> [options]\n"
        "  design   --vcs 3,2,3 [--all] [--max N]\n"
        "  verify   --scheme \"{X+ X- Y-} -> {Y+}\" [--mesh 8x8] "
        "[--vcs 1,1] [--torus]\n"
        "  turns    --scheme \"...\"\n"
        "  simulate --scheme \"...\" [--mesh 8x8] [--vcs 1,1] "
        "[--rate 0.2] [--pattern uniform] [--cycles 4000] [--torus]\n"
        "           [--watchdog C] [--recovery-passes N] "
        "[--sched auto|cycle|event] [--shards N] [--json]\n"
        "  compare  --scheme \"...\" --scheme2 \"...\"\n"
        "  space    --dims 3 [--vcs 1,1,1]\n"
        "  topo     [--dragonfly 4,2,2 | --fullmesh 8 | --mesh 4x4 "
        "[--torus] | --map-file F | --map \"...\"]\n"
        "           [--vcs 1,1] [--router SPEC]\n"
        "  forensics [--router minimal | --scheme \"...\"] "
        "[--mesh 4x4] [--vcs 1,1] [--torus]\n"
        "           [--rate 0.3] [--cycles 2000] [--watchdog 1000] "
        "[--pattern uniform]\n"
        "  faults   [--router SPEC | --scheme \"...\"] [--mesh 4x4] "
        "[--vcs 1,1] [--torus]\n"
        "           [--rate 0.1] [--cycles 4000] [--watchdog 2000] "
        "[--link-faults N]\n"
        "           [--node-faults N] [--fault-seed S] "
        "[--fault-start C] [--fault-spacing C]\n"
        "           [--events \"C:link:SRC->DST;C:node:N\"] [--json]\n"
        "  protocol [--router SPEC | --scheme \"...\"] [--mesh 4x4] "
        "[--vcs 2,2] [--torus]\n"
        "           [--rate 0.3] [--cycles 4000] [--watchdog 1000] "
        "[--depth N] [--service-latency C]\n"
        "           [--service-jitter C] [--classes 1|2] [--reserve] "
        "[--recovery-passes N]\n"
        "           [--pattern uniform] [--json]\n";
    return 2;
}

/** Infer a VC budget covering the scheme when none is given. */
std::vector<int>
vcsFor(const core::PartitionScheme &scheme, const Args &args,
       std::size_t dims)
{
    if (args.has("vcs")) {
        std::string err;
        if (auto v = core::parseVcList(args.get("vcs"), &err)) {
            v->resize(std::max(v->size(), dims), 1);
            return *v;
        }
        std::cerr << "bad --vcs: " << err << '\n';
        std::exit(2);
    }
    auto v = core::vcsRequired(scheme);
    v.resize(std::max(v.size(), dims), 1);
    for (auto &x : v)
        x = std::max(x, 1);
    return v;
}

topo::Network
networkFor(const core::PartitionScheme &scheme, const Args &args)
{
    std::string err;
    auto dims = core::parseDims(args.get("mesh", "8x8"), &err);
    if (!dims) {
        std::cerr << "bad --mesh: " << err << '\n';
        std::exit(2);
    }
    if (dims->size() < scheme.dimensionSpan()) {
        std::cerr << "scheme uses " << int{scheme.dimensionSpan()}
                  << " dimensions but --mesh has " << dims->size() << '\n';
        std::exit(2);
    }
    const auto vcs = vcsFor(scheme, args, dims->size());
    return args.has("torus") ? topo::Network::torus(*dims, vcs)
                             : topo::Network::mesh(*dims, vcs);
}

core::PartitionScheme
schemeFromArgs(const Args &args)
{
    std::string err;
    const auto scheme = core::parseScheme(args.get("scheme"), &err);
    if (!scheme) {
        std::cerr << "bad --scheme: " << err << '\n';
        std::exit(2);
    }
    return *scheme;
}

int
cmdDesign(const Args &args)
{
    std::string err;
    const auto vcs = core::parseVcList(args.get("vcs", "1,1"), &err);
    if (!vcs) {
        std::cerr << "bad --vcs: " << err << '\n';
        return 2;
    }
    const std::size_t max_schemes =
        static_cast<std::size_t>(std::stoul(args.get("max", "16")));

    std::vector<core::PartitionScheme> schemes;
    if (args.has("all")) {
        core::DerivationOptions opts;
        opts.permuteTransitionOrders = true;
        opts.maxSchemes = 4096;
        schemes = core::deriveAll(*vcs, opts);
    } else {
        schemes.push_back(core::partitionSets(core::makeSets(*vcs)));
    }

    std::vector<int> dims(vcs->size(), 4);
    const auto net = topo::Network::mesh(dims, *vcs);

    // Rank by measured adaptiveness.
    std::vector<std::pair<double, const core::PartitionScheme *>> ranked;
    for (const auto &s : schemes) {
        const auto adapt = cdg::measureAdaptiveness(net, s);
        if (!adapt.disconnectedMinimal)
            ranked.emplace_back(adapt.averageFraction, &s);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    if (ranked.size() > max_schemes)
        ranked.resize(max_schemes);

    TextTable t;
    t.setHeader({"scheme", "partitions", "adaptiveness", "deadlock-free"});
    for (const auto &[adapt, s] : ranked) {
        t.addRow({s->toString(),
                  TextTable::num(static_cast<int>(s->size())),
                  TextTable::num(adapt, 4),
                  cdg::checkDeadlockFree(net, *s).deadlockFree ? "yes"
                                                               : "NO"});
    }
    t.print(std::cout);
    std::cout << ranked.size() << " scheme(s); minimum channels for "
                 "fully adaptive "
              << vcs->size() << "D: "
              << core::minFullyAdaptiveChannels(
                     static_cast<std::uint8_t>(vcs->size()))
              << '\n';
    return 0;
}

int
cmdVerify(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    std::cout << "scheme: " << scheme.toString() << '\n';

    const auto validation = scheme.validate();
    std::cout << "Theorem 1 / disjointness: "
              << (validation.ok ? "OK" : "REJECTED — " + validation.reason)
              << '\n';
    if (!validation.ok)
        return 1;

    const auto net = networkFor(scheme, args);
    const auto verdict = cdg::checkDeadlockFree(net, scheme);
    std::cout << "Dally oracle: "
              << (verdict.deadlockFree ? "deadlock-free" : "CYCLIC")
              << " (" << verdict.numDependencies << " dependencies over "
              << verdict.numChannels << " channels)\n";
    if (!verdict.deadlockFree) {
        std::cout << "witness cycle:\n";
        for (const auto &ch : verdict.witness)
            std::cout << "  " << ch << '\n';
        return 1;
    }

    const routing::EbDaRouting router(
        net, scheme, {},
        net.isTorus() ? routing::EbDaRouting::Mode::ShortestState
                      : routing::EbDaRouting::Mode::Minimal);
    const auto conn = cdg::checkConnectivity(router);
    std::cout << "connectivity: "
              << (conn.connected ? "every pair routable" : "INCOMPLETE")
              << '\n';
    if (!net.isTorus()) {
        const auto adapt = cdg::measureAdaptiveness(net, scheme);
        std::cout << "adaptiveness: " << adapt.averageFraction
                  << (adapt.fullyAdaptive ? " (fully adaptive)" : "")
                  << '\n';
    }
    return conn.connected ? 0 : 1;
}

int
cmdTurns(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    const auto validation = scheme.validate();
    if (!validation.ok) {
        std::cerr << "invalid scheme: " << validation.reason << '\n';
        return 1;
    }
    const auto set = core::TurnSet::extract(scheme);
    TextTable t;
    t.setHeader({"turn", "kind", "origin", "from", "to"});
    for (const auto &turn : set.turns()) {
        t.addRow({turn.compassName(), core::toString(turn.kind),
                  turn.origin == core::TurnOrigin::Theorem1 ? "T1"
                  : turn.origin == core::TurnOrigin::Theorem2 ? "T2"
                                                              : "T3",
                  "P" + std::to_string(turn.fromPartition + 1),
                  "P" + std::to_string(turn.toPartition + 1)});
    }
    t.print(std::cout);
    std::cout << set.count(core::TurnKind::Turn90) << " x 90-degree, "
              << set.count(core::TurnKind::UTurn) << " x U, "
              << set.count(core::TurnKind::ITurn) << " x I\n";
    return 0;
}

int
cmdSimulate(const Args &args)
{
    const auto scheme = schemeFromArgs(args);
    const auto validation = scheme.validate();
    if (!validation.ok) {
        std::cerr << "invalid scheme: " << validation.reason << '\n';
        return 1;
    }
    const auto net = networkFor(scheme, args);

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }

    const routing::EbDaRouting router(
        net, scheme, {},
        net.isTorus() ? routing::EbDaRouting::Mode::ShortestState
                      : routing::EbDaRouting::Mode::Minimal);
    const sim::TrafficGenerator gen(net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.2);
    cfg.measureCycles = args.getU64("cycles", 4000);
    if (args.has("sched")) {
        const auto mode = sim::schedModeFromString(args.get("sched"));
        if (!mode) {
            std::cerr << "--sched must be auto, cycle or event\n";
            return 2;
        }
        cfg.schedMode = *mode;
    }
    if (args.has("shards")) {
        const long long s = args.getInt("shards", 0);
        if (s < 0 || s > sim::kMaxShards) {
            std::cerr << "--shards must be in [0, "
                      << sim::kMaxShards << "] (0 = auto)\n";
            return 2;
        }
        cfg.shards = static_cast<int>(s);
    }
    cfg.watchdogCycles = args.getU64("watchdog", cfg.watchdogCycles);
    cfg.faults.maxRecoveryAttempts = static_cast<int>(args.getInt(
        "recovery-passes", cfg.faults.maxRecoveryAttempts));
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    const auto result = sim::runSimulation(net, router, gen, cfg);

    if (args.has("json")) {
        JsonWriter w;
        w.beginObject();
        w.field("scheme", scheme.toString());
        w.field("pattern", sim::toString(*pattern));
        w.beginObject("config");
        sim::jsonFields(w, cfg);
        w.end();
        w.beginObject("result");
        sim::jsonFields(w, result);
        w.end();
        w.end();
        std::cout << w.str() << '\n';
        return result.deadlocked ? 1 : 0;
    }

    if (result.deadlocked) {
        std::cout << "DEADLOCK detected by the watchdog\n";
        return 1;
    }
    std::cout << "packets measured: " << result.packetsMeasured
              << "\navg latency: " << result.avgLatency << " cycles (p99 "
              << result.p99Latency << ")\navg hops: " << result.avgHops
              << "\naccepted: " << result.acceptedRate
              << " flits/node/cycle (offered " << result.offeredRate
              << ")\nchannel load CV: " << result.channelLoadCv << '\n';
    return 0;
}

/** Network + routing relation for the runtime commands: either an
 *  EbDa scheme (like simulate) or a sweep router-factory spec. The
 *  members are constructed in place and must not be moved — the
 *  relation holds a reference into `net`. */
struct RouterSetup
{
    std::optional<topo::Network> net;
    std::unique_ptr<cdg::RoutingRelation> owned;
    std::optional<routing::EbDaRouting> ebda;
    const cdg::RoutingRelation *router = nullptr;
};

bool
setupRouter(const Args &args, const char *default_router,
            const char *default_vcs, RouterSetup &out)
{
    if (args.has("scheme")) {
        const auto scheme = schemeFromArgs(args);
        const auto validation = scheme.validate();
        if (!validation.ok) {
            std::cerr << "invalid scheme: " << validation.reason << '\n';
            return false;
        }
        out.net = networkFor(scheme, args);
        out.ebda.emplace(
            *out.net, scheme, core::TurnExtractionOptions{},
            out.net->isTorus()
                ? routing::EbDaRouting::Mode::ShortestState
                : routing::EbDaRouting::Mode::Minimal);
        out.router = &*out.ebda;
        return true;
    }
    std::string err;
    const auto dims = core::parseDims(args.get("mesh", "4x4"), &err);
    if (!dims) {
        std::cerr << "bad --mesh: " << err << '\n';
        return false;
    }
    auto vcs = core::parseVcList(args.get("vcs", default_vcs), &err);
    if (!vcs) {
        std::cerr << "bad --vcs: " << err << '\n';
        return false;
    }
    vcs->resize(std::max(vcs->size(), dims->size()), 1);
    out.net = args.has("torus") ? topo::Network::torus(*dims, *vcs)
                                : topo::Network::mesh(*dims, *vcs);
    out.owned =
        sweep::makeRouter(*out.net, args.get("router", default_router),
                          &err);
    if (!out.owned) {
        std::cerr << err << '\n';
        return false;
    }
    out.router = out.owned.get();
    return true;
}

int
cmdTopo(const Args &args)
{
    // ---- Build the network from whichever declaration was given.
    topo::Network net = topo::Network::mesh({2}, {1}); // placeholder
    std::vector<std::pair<topo::NodeId, topo::NodeId>> dead_links;
    std::string kind_label;
    std::string default_router = "updown";
    std::string err;
    try {
        if (args.has("dragonfly")) {
            const auto abc = core::parseVcList(args.get("dragonfly"), &err);
            if (!abc || abc->size() != 3) {
                std::cerr << "bad --dragonfly: want a,p,h"
                          << (err.empty() ? "" : " (" + err + ")") << '\n';
                return 2;
            }
            const auto vcs =
                core::parseVcList(args.get("vcs", "2,1"), &err);
            if (!vcs || vcs->size() != 2) {
                std::cerr << "bad --vcs (want localVcs,globalVcs): " << err
                          << '\n';
                return 2;
            }
            net = topo::Network::dragonfly((*abc)[0], (*abc)[1], (*abc)[2],
                                           (*vcs)[0], (*vcs)[1]);
            kind_label = "dragonfly";
            default_router = "dragonfly-min";
        } else if (args.has("fullmesh")) {
            const int n = static_cast<int>(args.getInt("fullmesh", 0));
            const int vcs = static_cast<int>(args.getInt("vcs", 1));
            net = topo::Network::fullMesh(n, vcs);
            kind_label = "fullmesh";
            default_router = "fullmesh-2hop";
        } else if (args.has("map") || args.has("map-file")) {
            std::string text = args.get("map");
            if (args.has("map-file")) {
                std::ifstream in(args.get("map-file"));
                if (!in) {
                    std::cerr << "cannot read --map-file '"
                              << args.get("map-file") << "'\n";
                    return 2;
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                text = ss.str();
            }
            auto parsed = topo::parseAsciiMap(
                text, topo::AsciiMapOptions{
                          static_cast<int>(args.getInt("default-vcs", 1))});
            net = std::move(parsed.network);
            dead_links = std::move(parsed.deadLinks);
            kind_label = "ascii map";
        } else {
            const auto dims = core::parseDims(args.get("mesh", "4x4"), &err);
            if (!dims) {
                std::cerr << "bad --mesh: " << err << '\n';
                return 2;
            }
            auto vcs = core::parseVcList(args.get("vcs", "1"), &err);
            if (!vcs) {
                std::cerr << "bad --vcs: " << err << '\n';
                return 2;
            }
            vcs->resize(std::max(vcs->size(), dims->size()), 1);
            net = args.has("torus") ? topo::Network::torus(*dims, *vcs)
                                    : topo::Network::mesh(*dims, *vcs);
            kind_label = args.has("torus") ? "torus" : "mesh";
            default_router = args.has("torus") ? "updown" : "xy";
        }
    } catch (const std::invalid_argument &e) {
        std::cerr << "bad topology: " << e.what() << '\n';
        return 2;
    }
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }

    // ---- Stats.
    std::size_t min_deg = net.numNodes() ? net.numLinks() : 0, max_deg = 0;
    std::vector<std::size_t> out_deg(net.numNodes(), 0);
    for (topo::LinkId l = 0; l < net.numLinks(); ++l)
        ++out_deg[net.link(l).src];
    for (const auto d : out_deg) {
        min_deg = std::min(min_deg, d);
        max_deg = std::max(max_deg, d);
    }
    int diameter = 0;
    bool connected_graph = true;
    for (topo::NodeId u = 0; u < net.numNodes(); ++u)
        for (topo::NodeId v = 0; v < net.numNodes(); ++v) {
            const int d = net.distance(u, v);
            if (d < 0)
                connected_graph = false;
            diameter = std::max(diameter, d);
        }

    std::cout << "topology: " << kind_label << '\n'
              << "nodes: " << net.numNodes() << "  links: "
              << net.numLinks() << "  channels: " << net.numChannels()
              << '\n'
              << "out-degree: " << min_deg << ".." << max_deg << '\n'
              << "diameter: " << diameter
              << (connected_graph ? "" : "  (graph NOT strongly connected)")
              << '\n';
    if (!dead_links.empty()) {
        std::cout << "dead links (" << dead_links.size() << "):";
        for (const auto &[s, d] : dead_links)
            std::cout << ' ' << net.nodeName(s) << "->" << net.nodeName(d);
        std::cout << '\n';
    }

    // ---- Existence: does ANY deadlock-free complete routing exist?
    graph::Digraph g(net.numNodes());
    for (topo::LinkId l = 0; l < net.numLinks(); ++l)
        g.addEdge(net.link(l).src, net.link(l).dst);
    const auto exist = cdg::deadlockFreeRoutingExists(g);
    std::cout << "routing existence (Mendlovic-Matias): "
              << (exist.verdict == cdg::ExistenceReport::Verdict::Exists
                      ? "EXISTS"
                  : exist.verdict
                          == cdg::ExistenceReport::Verdict::NotExists
                      ? "IMPOSSIBLE"
                      : "undetermined")
              << " [" << exist.method << "]\n";

    // A routing relation cannot connect what the graph does not; the
    // structural engines assert strong connectivity, so stop here
    // rather than die inside one of them.
    if (!connected_graph) {
        std::cout << "skipping routing checks: graph is not strongly "
                     "connected\n";
        return 1;
    }

    // ---- Checker verdicts for the chosen routing engine.
    const std::string router_spec = args.get("router", default_router);
    const auto router = sweep::makeRouter(net, router_spec, &err);
    if (!router) {
        std::cerr << "router '" << router_spec << "': " << err << '\n';
        return 2;
    }
    std::cout << "router: " << router->name() << " (spec '" << router_spec
              << "')\n";

    const auto dally = cdg::checkDeadlockFree(*router);
    const auto mm = cdg::checkMendlovicMatias(*router);
    std::cout << "Dally relation-CDG oracle: "
              << (dally.deadlockFree ? "deadlock-free" : "CYCLIC") << " ("
              << dally.numDependencies << " dependencies over "
              << dally.numChannels << " channels)\n";
    std::cout << "Mendlovic-Matias fixpoint: "
              << (mm.deadlockFree ? "deadlock-free" : "DEADLOCK") << " ("
              << mm.numStates << " states, " << mm.releaseOrder.size()
              << '/' << mm.occupiableChannels << " channels released)\n";
    if (!mm.deadlockFree) {
        std::cout << "stuck knot:\n";
        for (const auto &ch : mm.stuckWitness)
            std::cout << "  " << ch << '\n';
    }
    std::cout << "checker agreement: "
              << (dally.deadlockFree == mm.deadlockFree
                      ? "agree"
                      : "DIVERGE (CDG test is conservative for adaptive "
                        "relations with escape paths)")
              << '\n';

    const auto conn = cdg::checkConnectivity(*router);
    std::cout << "connectivity: "
              << (conn.connected ? "every pair routable" : "INCOMPLETE")
              << '\n';

    return (dally.deadlockFree && mm.deadlockFree && conn.connected) ? 0
                                                                     : 1;
}

int
cmdForensics(const Args &args)
{
    // Network + router: either an EbDa scheme (like simulate) or a
    // sweep router-factory spec (default: the deadlock-prone
    // unrestricted minimal-adaptive negative control).
    RouterSetup setup;
    if (!setupRouter(args, "minimal", "1,1", setup))
        return 2;
    const auto &net = setup.net;
    const auto *router = setup.router;

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }
    const sim::TrafficGenerator gen(*net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.3);
    cfg.measureCycles = args.getU64("cycles", 2000);
    cfg.watchdogCycles = args.getU64("watchdog", 1000);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    sim::Simulator simulator(*net, *router, gen, cfg);
    const auto result = simulator.run();

    std::cout << router->name() << " on " << net->numNodes()
              << " nodes, rate " << cfg.injectionRate << ": ran "
              << result.cycles << " cycles, "
              << (result.deadlocked ? "DEADLOCKED" : "no deadlock")
              << "\n\nstall attribution (stall-cycles, whole run):\n";
    TextTable stalls;
    stalls.setHeader({"stage", "stall-cycles"});
    stalls.addRow({"route-compute",
                   std::to_string(result.stallRouteCompute)});
    stalls.addRow({"vc-starved", std::to_string(result.stallVcStarved)});
    stalls.addRow({"credit-starved",
                   std::to_string(result.stallCreditStarved)});
    stalls.addRow({"switch-lost",
                   std::to_string(result.stallSwitchLost)});
    stalls.print(std::cout);
    std::cout << "hottest router: node " << result.hottestRouter << " ("
              << result.hottestRouterStalls << " stall-cycles)\n";

    // Top occupied channels (time-weighted mean).
    const auto occ = simulator.channelOccupancy();
    std::vector<topo::ChannelId> by_occ(occ.size());
    for (topo::ChannelId c = 0; c < occ.size(); ++c)
        by_occ[c] = c;
    std::sort(by_occ.begin(), by_occ.end(),
              [&](topo::ChannelId a, topo::ChannelId b) {
                  return occ[a].mean > occ[b].mean;
              });
    std::cout << "\nbusiest channels (mean occupancy / peak, of depth "
              << cfg.vcDepth << "):\n";
    for (std::size_t k = 0; k < std::min<std::size_t>(5, by_occ.size());
         ++k) {
        const topo::ChannelId c = by_occ[k];
        std::cout << "  " << net->channelName(c) << ": "
                  << occ[c].mean << " / " << occ[c].peak << '\n';
    }

    if (!result.deadlocked) {
        std::cout << "\nno deadlock caught; nothing to dissect\n";
        return 1;
    }
    std::cout << '\n' << simulator.forensics().describe(*net);
    return 0;
}

/** Parse "--events" fault lists: semicolon-separated entries of the
 *  form "CYCLE:link:SRC->DST" or "CYCLE:node:N". */
bool
parseFaultEvents(const std::string &text,
                 std::vector<sim::FaultEvent> &out, std::string *err)
{
    auto fail = [&](const std::string &what, const std::string &entry) {
        if (err)
            *err = what + " in fault event '" + entry + "'";
        return false;
    };
    auto number = [](const std::string &s, std::uint64_t &v) {
        if (s.empty())
            return false;
        char *end = nullptr;
        v = std::strtoull(s.c_str(), &end, 10);
        return end && *end == '\0';
    };
    std::size_t pos = 0;
    while (pos < text.size()) {
        auto semi = text.find(';', pos);
        if (semi == std::string::npos)
            semi = text.size();
        const std::string entry = text.substr(pos, semi - pos);
        pos = semi + 1;
        if (entry.empty())
            continue;
        const auto c1 = entry.find(':');
        const auto c2 =
            c1 == std::string::npos ? c1 : entry.find(':', c1 + 1);
        if (c2 == std::string::npos)
            return fail("expected CYCLE:kind:WHAT", entry);
        sim::FaultEvent ev;
        if (!number(entry.substr(0, c1), ev.cycle))
            return fail("bad cycle", entry);
        const std::string kind = entry.substr(c1 + 1, c2 - c1 - 1);
        const std::string what = entry.substr(c2 + 1);
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        if (kind == "node") {
            ev.router = true;
            if (!number(what, a))
                return fail("bad node id", entry);
            ev.node = static_cast<std::uint32_t>(a);
        } else if (kind == "link") {
            const auto arrow = what.find("->");
            if (arrow == std::string::npos
                || !number(what.substr(0, arrow), a)
                || !number(what.substr(arrow + 2), b))
                return fail("bad SRC->DST", entry);
            ev.src = static_cast<std::uint32_t>(a);
            ev.dst = static_cast<std::uint32_t>(b);
        } else {
            return fail("kind must be 'link' or 'node'", entry);
        }
        out.push_back(ev);
    }
    return true;
}

int
cmdFaults(const Args &args)
{
    // Default: the paper's Fig 7(b) fully adaptive scheme (needs VC
    // budget 1,2 on a mesh), the configuration whose U-/I-turns are
    // what Theorem 2 says make degradation graceful.
    RouterSetup setup;
    if (!setupRouter(args, "fig7b", "1,2", setup))
        return 2;
    const auto &net = setup.net;
    const auto *router = setup.router;

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }
    const sim::TrafficGenerator gen(*net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.1);
    cfg.measureCycles = args.getU64("cycles", 4000);
    cfg.watchdogCycles = args.getU64("watchdog", 2000);
    cfg.faults.randomLinkFaults =
        static_cast<int>(args.getInt("link-faults", 0));
    cfg.faults.randomRouterFaults =
        static_cast<int>(args.getInt("node-faults", 0));
    cfg.faults.seed = args.getU64("fault-seed", cfg.faults.seed);
    cfg.faults.firstCycle =
        args.getU64("fault-start", cfg.faults.firstCycle);
    cfg.faults.spacing =
        args.getU64("fault-spacing", cfg.faults.spacing);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    if (args.has("events")) {
        std::string err;
        if (!parseFaultEvents(args.get("events"), cfg.faults.events,
                              &err)) {
            std::cerr << err << '\n';
            return 2;
        }
    }
    if (cfg.faults.empty()) {
        // A faults run without faults is a usage error, not a silent
        // fault-free simulation.
        std::cerr << "no faults scheduled: give --link-faults, "
                     "--node-faults or --events\n";
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    sim::Simulator simulator(*net, *router, gen, cfg);
    const auto result = simulator.run();
    const auto &injector = simulator.faults();

    if (args.has("json")) {
        JsonWriter w;
        w.beginObject();
        w.field("router", router->name());
        w.field("pattern", sim::toString(*pattern));
        w.beginObject("config");
        sim::jsonFields(w, cfg);
        w.end();
        w.beginObject("result");
        sim::jsonFields(w, result);
        w.end();
        w.end();
        std::cout << w.str() << '\n';
        return result.degradedGracefully ? 0 : 1;
    }

    std::cout << router->name() << " on " << net->numNodes()
              << " nodes, rate " << cfg.injectionRate
              << "\n\nfault schedule ("
              << injector.schedule().size() << " event(s), "
              << result.faultEventsApplied << " applied):\n";
    TextTable sched;
    sched.setHeader({"cycle", "fault", "applied"});
    std::size_t idx = 0;
    for (const auto &ev : injector.schedule()) {
        const std::string what =
            ev.router ? "router " + std::to_string(ev.node)
                      : "link " + std::to_string(ev.src) + " -> "
                            + std::to_string(ev.dst);
        sched.addRow({TextTable::num(ev.cycle), what,
                      idx < result.faultEventsApplied ? "yes" : "no"});
        ++idx;
    }
    sched.print(std::cout);

    std::cout << "\ndegradation report:\n  delivered fraction: "
              << result.deliveredFraction << "\n  packets dropped "
              << result.packetsDropped << ", retransmitted "
              << result.packetsRetransmitted << ", lost "
              << result.packetsLost << "\n  recovery passes: "
              << result.recoveryPasses
              << "\n  degraded-CDG oracle: " << result.faultChecksClean
              << "/" << result.faultChecks << " checks clean\n";
    if (result.packetsMeasured > 0)
        std::cout << "  avg latency: " << result.avgLatency
                  << " cycles over " << result.packetsMeasured
                  << " measured packets\n";

    if (result.degradedGracefully) {
        std::cout << "\ngraceful degradation: no watchdog wedge after "
                  << result.faultEventsApplied << " fault event(s)\n";
        return 0;
    }
    std::cout << "\nWEDGED after " << result.recoveryPasses
              << " recovery pass(es)\n\n"
              << simulator.forensics().describe(*net);
    return 1;
}

int
cmdProtocol(const Args &args)
{
    // Default: XY on a 4x4 mesh with 2 VCs per link — Dally-verified
    // at the channel level, which is exactly what makes the protocol
    // wedge interesting: the channel CDG stays acyclic while the
    // request→endpoint→reply dependency closes a cycle above it.
    RouterSetup setup;
    if (!setupRouter(args, "xy", "2,2", setup))
        return 2;
    const auto &net = setup.net;
    const auto *router = setup.router;

    const auto pattern =
        sim::patternFromString(args.get("pattern", "uniform"));
    if (!pattern) {
        std::cerr << "unknown --pattern\n";
        return 2;
    }
    const sim::TrafficGenerator gen(*net, *pattern);

    sim::SimConfig cfg;
    cfg.injectionRate = args.getDouble("rate", 0.3);
    cfg.measureCycles = args.getU64("cycles", 4000);
    cfg.watchdogCycles = args.getU64("watchdog", 1000);
    cfg.protocol.requestReply = true;
    cfg.protocol.replyBufferDepth = static_cast<int>(
        args.getInt("depth", cfg.protocol.replyBufferDepth));
    cfg.protocol.serviceLatency =
        args.getU64("service-latency", cfg.protocol.serviceLatency);
    cfg.protocol.serviceJitter =
        args.getU64("service-jitter", cfg.protocol.serviceJitter);
    cfg.protocol.messageClasses = static_cast<int>(
        args.getInt("classes", cfg.protocol.messageClasses));
    if (args.has("reserve"))
        cfg.protocol.reserveReplyBuffer = true;
    cfg.faults.maxRecoveryAttempts = static_cast<int>(args.getInt(
        "recovery-passes", cfg.faults.maxRecoveryAttempts));
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return 2;
    }
    cfg.warmupCycles = cfg.measureCycles / 4;
    cfg.drainCycles = cfg.measureCycles * 10;

    try {
        sim::Simulator simulator(*net, *router, gen, cfg);
        const auto result = simulator.run();

        if (args.has("json")) {
            JsonWriter w;
            w.beginObject();
            w.field("router", router->name());
            w.field("pattern", sim::toString(*pattern));
            w.beginObject("config");
            sim::jsonFields(w, cfg);
            w.end();
            w.beginObject("result");
            sim::jsonFields(w, result);
            w.end();
            w.end();
            std::cout << w.str() << '\n';
            return result.deadlocked ? 1 : 0;
        }

        std::cout << router->name() << " on " << net->numNodes()
                  << " nodes, rate " << cfg.injectionRate
                  << ", reply buffer depth "
                  << cfg.protocol.replyBufferDepth << ", "
                  << cfg.protocol.messageClasses
                  << " message class(es)"
                  << (cfg.protocol.reserveReplyBuffer
                          ? ", buffer reservation"
                          : "")
                  << "\n\nendpoint report:\n  requests delivered: "
                  << result.protocolRequestsDelivered
                  << "\n  replies injected: "
                  << result.protocolRepliesInjected << ", delivered "
                  << result.protocolRepliesDelivered
                  << "\n  endpoint stalls (full-buffer refusals): "
                  << result.protocolEndpointStalls
                  << "\n  requests throttled by reservation: "
                  << result.protocolThrottled
                  << "\n  peak buffer occupancy: "
                  << result.protocolPeakOccupancy << " / "
                  << cfg.protocol.replyBufferDepth
                  << "\n  delivered fraction: "
                  << result.deliveredFraction
                  << "\n  recovery passes: " << result.recoveryPasses
                  << '\n';
        if (result.packetsMeasured > 0)
            std::cout << "  avg latency: " << result.avgLatency
                      << " cycles over " << result.packetsMeasured
                      << " measured packets\n";

        if (!result.deadlocked) {
            std::cout << "\ncompleted watchdog-clean\n";
            return 0;
        }
        std::cout << "\nWEDGED ("
                  << (result.protocolDeadlock
                          ? "protocol / message-dependency"
                          : "channel")
                  << " deadlock) after " << result.recoveryPasses
                  << " recovery pass(es)\n\n"
                  << simulator.forensics().describe(*net);
        return 1;
    } catch (const std::invalid_argument &e) {
        std::cerr << "bad protocol config: " << e.what() << '\n';
        return 2;
    }
}

int
cmdCompare(const Args &args)
{
    std::string err;
    const auto a = core::parseScheme(args.get("scheme"), &err);
    if (!a) {
        std::cerr << "bad --scheme: " << err << '\n';
        return 2;
    }
    const auto b = core::parseScheme(args.get("scheme2"), &err);
    if (!b) {
        std::cerr << "bad --scheme2: " << err << '\n';
        return 2;
    }

    TextTable t;
    t.setHeader({"metric", "scheme A", "scheme B"});
    t.addRow({"scheme", a->toString(), b->toString()});

    const auto va = a->validate();
    const auto vb = b->validate();
    t.addRow({"Theorem 1", va.ok ? "OK" : va.reason,
              vb.ok ? "OK" : vb.reason});
    if (!va.ok || !vb.ok) {
        t.print(std::cout);
        return 1;
    }

    auto dims_needed = std::max(a->dimensionSpan(), b->dimensionSpan());
    std::vector<int> vcs_a = core::vcsRequired(*a);
    std::vector<int> vcs_b = core::vcsRequired(*b);
    std::vector<int> vcs(dims_needed, 1);
    for (std::size_t d = 0; d < vcs.size(); ++d) {
        if (d < vcs_a.size())
            vcs[d] = std::max(vcs[d], vcs_a[d]);
        if (d < vcs_b.size())
            vcs[d] = std::max(vcs[d], vcs_b[d]);
    }
    std::vector<int> dims(dims_needed, 5);
    const auto net = topo::Network::mesh(dims, vcs);

    auto row = [&](const char *label, auto fn) {
        t.addRow({label, fn(*a), fn(*b)});
    };
    row("channels", [](const core::PartitionScheme &s) {
        return TextTable::num(s.numClasses());
    });
    row("90-degree turns", [](const core::PartitionScheme &s) {
        return TextTable::num(
            core::TurnSet::extract(s).count(core::TurnKind::Turn90));
    });
    row("deadlock-free", [&](const core::PartitionScheme &s) {
        return std::string(
            cdg::checkDeadlockFree(net, s).deadlockFree ? "yes" : "NO");
    });
    row("adaptiveness", [&](const core::PartitionScheme &s) {
        return TextTable::num(
            cdg::measureAdaptiveness(net, s).averageFraction, 4);
    });
    row("fully adaptive", [&](const core::PartitionScheme &s) {
        return std::string(
            cdg::measureAdaptiveness(net, s).fullyAdaptive ? "yes"
                                                           : "no");
    });
    t.print(std::cout);
    return 0;
}

int
cmdSpace(const Args &args)
{
    const int n = std::stoi(args.get("dims", "2"));
    if (n < 2 || n > 16) {
        std::cerr << "--dims out of range\n";
        return 2;
    }
    std::vector<int> vcs(static_cast<std::size_t>(n), 1);
    if (args.has("vcs")) {
        std::string err;
        const auto v = core::parseVcList(args.get("vcs"), &err);
        if (!v || v->size() != static_cast<std::size_t>(n)) {
            std::cerr << "bad --vcs\n";
            return 2;
        }
        vcs = *v;
    }
    const auto space =
        cdg::turnModelSpace(static_cast<std::uint8_t>(n), vcs);
    std::cout << "abstract cycles: " << space.numCycles
              << "\nturn-model combinations to examine: 4^"
              << space.numCycles << " = " << space.numCombinations
              << "\nEbDa: one direct construction, e.g. mergedScheme("
              << n << ") with "
              << core::minFullyAdaptiveChannels(
                     static_cast<std::uint8_t>(n))
              << " channels\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    const Args args(argc, argv, 2);
    if (!args.error().empty()) {
        std::cerr << args.error() << '\n';
        return usage();
    }

    try {
        if (cmd == "design")
            return cmdDesign(args);
        if (cmd == "verify")
            return cmdVerify(args);
        if (cmd == "turns")
            return cmdTurns(args);
        if (cmd == "simulate")
            return cmdSimulate(args);
        if (cmd == "compare")
            return cmdCompare(args);
        if (cmd == "space")
            return cmdSpace(args);
        if (cmd == "topo")
            return cmdTopo(args);
        if (cmd == "forensics")
            return cmdForensics(args);
        if (cmd == "faults")
            return cmdFaults(args);
        if (cmd == "protocol")
            return cmdProtocol(args);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }
    return usage();
}
