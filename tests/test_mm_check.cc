/**
 * @file
 * The Mendlovic–Matias checker cross-checked against the Dally
 * relation-CDG oracle over the whole routing catalog, the documented
 * strictness gap on Duato's relation, the new dragonfly / full-mesh
 * engines with their deadlock-prone negative controls, and the
 * routing-existence checker on raw digraphs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cdg/mm_check.hh"
#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "graph/digraph.hh"
#include "routing/baselines.hh"
#include "routing/dateline.hh"
#include "routing/dragonfly.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "routing/elevator.hh"
#include "routing/fullmesh.hh"
#include "routing/updown.hh"
#include "topo/network.hh"

namespace ebda {
namespace {

/**
 * Both checkers must agree with the expected verdict. On agreement the
 * MM report's internals are validated too: a full release order when
 * deadlock-free, a non-empty knot witness otherwise.
 */
void
expectBothCheckersAgree(const cdg::RoutingRelation &r, bool expect_free)
{
    SCOPED_TRACE(r.name());
    const auto dally = cdg::checkDeadlockFree(r);
    const auto mm = cdg::checkMendlovicMatias(r);
    EXPECT_EQ(dally.deadlockFree, expect_free);
    EXPECT_EQ(mm.deadlockFree, expect_free);
    if (expect_free) {
        EXPECT_EQ(mm.releaseOrder.size(), mm.occupiableChannels);
        const std::set<topo::ChannelId> uniq(mm.releaseOrder.begin(),
                                             mm.releaseOrder.end());
        EXPECT_EQ(uniq.size(), mm.releaseOrder.size());
        EXPECT_TRUE(mm.stuckWitness.empty());
    } else {
        EXPECT_LT(mm.releaseOrder.size(), mm.occupiableChannels);
        EXPECT_FALSE(mm.stuckWitness.empty());
    }
}

TEST(MmCatalog, MeshDeterministicAndTurnModelRelations)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    expectBothCheckersAgree(routing::DimensionOrderRouting::xy(net), true);
    expectBothCheckersAgree(routing::DimensionOrderRouting::yx(net), true);
    expectBothCheckersAgree(routing::WestFirstRouting(net), true);
    expectBothCheckersAgree(routing::NorthLastRouting(net), true);
    expectBothCheckersAgree(routing::NegativeFirstRouting(net), true);
    expectBothCheckersAgree(routing::OddEvenRouting(net), true);
}

TEST(MmCatalog, UnrestrictedMinimalAdaptiveDeadlocksOnBoth)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    expectBothCheckersAgree(routing::MinimalAdaptiveRouting(net), false);
}

TEST(MmCatalog, EbdaPartitionSchemesOnMesh)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    expectBothCheckersAgree(
        routing::EbDaRouting(net, core::schemeFig7b()), true);
    expectBothCheckersAgree(
        routing::EbDaRouting(net, core::schemeFig7c()), true);
}

TEST(MmCatalog, TorusDateline)
{
    const auto net = topo::Network::torus({4, 4}, {2, 2});
    expectBothCheckersAgree(routing::TorusDatelineRouting(net), true);
}

TEST(MmCatalog, Partial3dElevatorAndUpDown)
{
    const std::vector<std::pair<int, int>> elevators = {{0, 0}, {2, 1}};
    const auto net =
        topo::Network::partialMesh3d({3, 3, 2}, {2, 2, 1}, elevators);
    expectBothCheckersAgree(
        routing::ElevatorFirstRouting(net, elevators), true);
    expectBothCheckersAgree(routing::UpDownRouting(net), true);
}

TEST(MmCatalog, DuatoStrictnessGap)
{
    // The documented divergence: Duato's fully adaptive relation has a
    // cyclic full CDG (Dally's criterion rejects it — pinned in
    // test_duato.cc) yet every packet can always drain through the
    // escape sub-DAG, so the exact MM fixpoint peels everything.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    EXPECT_FALSE(cdg::checkDeadlockFree(r).deadlockFree);
    const auto mm = cdg::checkMendlovicMatias(r);
    EXPECT_TRUE(mm.deadlockFree);
    EXPECT_EQ(mm.releaseOrder.size(), mm.occupiableChannels);
}

TEST(MmCatalog, DragonflyEscapeVcAndNegativeControl)
{
    const auto net = topo::Network::dragonfly(4, 2, 2);
    expectBothCheckersAgree(routing::DragonflyMinRouting(net, 4), true);
    expectBothCheckersAgree(
        routing::DragonflyMinRouting(net, 4, /*vc_escalation=*/false),
        false);
}

TEST(MmCatalog, FullMeshAscendAndNegativeControl)
{
    const auto net = topo::Network::fullMesh(8);
    expectBothCheckersAgree(routing::FullMeshRouting(net), true);
    expectBothCheckersAgree(
        routing::FullMeshRouting(
            net, routing::FullMeshRouting::Mode::Unrestricted),
        false);
}

// ---------------------------------------------------------------------
// Routing-existence checker on raw digraphs.

/**
 * Validates an Exists certificate: it must be a permutation of the
 * graph's edges, and walking it ascending must reach every pair the
 * graph connects (the P-matrix of rank-ascending reachability).
 */
void
expectValidOrderCertificate(
    const graph::Digraph &g,
    const std::vector<std::pair<graph::NodeId, graph::NodeId>> &order)
{
    std::set<std::pair<graph::NodeId, graph::NodeId>> uniq(order.begin(),
                                                           order.end());
    ASSERT_EQ(uniq.size(), order.size());
    ASSERT_EQ(order.size(), g.numEdges());
    for (const auto &[u, v] : order)
        ASSERT_TRUE(g.hasEdge(u, v));

    const std::size_t n = g.numNodes();
    std::vector<char> ascend(n * n, 0); // ascend[s*n+v]
    for (const auto &[u, v] : order)
        for (graph::NodeId s = 0; s < n; ++s)
            if (s == u || ascend[s * n + u])
                ascend[s * n + v] = 1;

    // Plain reachability, for comparison.
    for (graph::NodeId s = 0; s < n; ++s) {
        std::vector<char> seen(n, 0);
        std::vector<graph::NodeId> queue = {s};
        for (std::size_t head = 0; head < queue.size(); ++head)
            for (const auto v : g.successors(queue[head]))
                if (!seen[v]) {
                    seen[v] = 1;
                    queue.push_back(v);
                }
        for (graph::NodeId t = 0; t < n; ++t)
            if (t != s && seen[t])
                EXPECT_TRUE(ascend[s * n + t])
                    << "no ascending path " << s << " -> " << t;
    }
}

TEST(RoutingExistence, UnidirectionalRingsHaveNoDeadlockFreeRouting)
{
    for (const std::size_t n : {3u, 4u}) {
        graph::Digraph g(n);
        for (graph::NodeId u = 0; u < n; ++u)
            g.addEdge(u, (u + 1) % n);
        const auto rep = cdg::deadlockFreeRoutingExists(g);
        EXPECT_EQ(rep.verdict,
                  cdg::ExistenceReport::Verdict::NotExists)
            << "ring of " << n;
        EXPECT_EQ(rep.method, "exact");
    }
}

TEST(RoutingExistence, ChordDoesNotRescueTheRing)
{
    // C4 plus chord 0 -> 2: the chord shortens some routes but pairs
    // like (1, 0) and (3, 2) still force full ring traversals whose
    // dependencies close a cycle.
    graph::Digraph g(4);
    for (graph::NodeId u = 0; u < 4; ++u)
        g.addEdge(u, (u + 1) % 4);
    g.addEdge(0, 2);
    const auto rep = cdg::deadlockFreeRoutingExists(g);
    EXPECT_EQ(rep.verdict, cdg::ExistenceReport::Verdict::NotExists);
    EXPECT_EQ(rep.method, "exact");
}

TEST(RoutingExistence, DagAlwaysAdmitsTopoOrder)
{
    graph::Digraph g(4); // diamond 0 -> {1, 2} -> 3
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    const auto rep = cdg::deadlockFreeRoutingExists(g);
    ASSERT_EQ(rep.verdict, cdg::ExistenceReport::Verdict::Exists);
    EXPECT_EQ(rep.method, "topo-order");
    expectValidOrderCertificate(g, rep.certificate);
}

TEST(RoutingExistence, BidirectedGraphAdmitsUpDownOrder)
{
    // Bidirected 2x2 mesh (the digraph of a 4-node switch fabric).
    graph::Digraph g(4);
    const std::pair<graph::NodeId, graph::NodeId> undirected[] = {
        {0, 1}, {2, 3}, {0, 2}, {1, 3}};
    for (const auto &[u, v] : undirected) {
        g.addEdge(u, v);
        g.addEdge(v, u);
    }
    const auto rep = cdg::deadlockFreeRoutingExists(g);
    ASSERT_EQ(rep.verdict, cdg::ExistenceReport::Verdict::Exists);
    EXPECT_EQ(rep.method, "updown-order");
    expectValidOrderCertificate(g, rep.certificate);
}

TEST(RoutingExistence, MixedSmallGraphSolvedExactly)
{
    // 0 <-> 1 <-> 2 plus the one-way chord 0 -> 2: neither a DAG nor
    // bidirected, 5 edges — the exhaustive search must find an order
    // (e.g. release 2->1 and 1->0 first).
    graph::Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(0, 2);
    const auto rep = cdg::deadlockFreeRoutingExists(g);
    ASSERT_EQ(rep.verdict, cdg::ExistenceReport::Verdict::Exists);
    EXPECT_EQ(rep.method, "exact");
    expectValidOrderCertificate(g, rep.certificate);
}

TEST(RoutingExistence, LargeRingRefutedByForcedCycle)
{
    // 10 edges exceeds the exact-search budget gate; the forced-
    // dependency refutation must still prove NotExists: every edge is
    // unavoidable for some pair and has a unique continuation.
    graph::Digraph g(10);
    for (graph::NodeId u = 0; u < 10; ++u)
        g.addEdge(u, (u + 1) % 10);
    const auto rep = cdg::deadlockFreeRoutingExists(g);
    ASSERT_EQ(rep.verdict, cdg::ExistenceReport::Verdict::NotExists);
    EXPECT_EQ(rep.method, "forced-cycle");
    EXPECT_FALSE(rep.certificate.empty());
    for (const auto &[u, v] : rep.certificate)
        EXPECT_TRUE(g.hasEdge(u, v));
}

TEST(RoutingExistence, EmptyAndEdgelessGraphsTriviallyExist)
{
    EXPECT_EQ(cdg::deadlockFreeRoutingExists(graph::Digraph(0)).verdict,
              cdg::ExistenceReport::Verdict::Exists);
    EXPECT_EQ(cdg::deadlockFreeRoutingExists(graph::Digraph(5)).verdict,
              cdg::ExistenceReport::Verdict::Exists);
}

} // namespace
} // namespace ebda
