/**
 * @file
 * Unit tests for the Section 4 minimum-channel constructions and the
 * N = (n+1) * 2^(n-1) formula.
 */

#include <gtest/gtest.h>

#include "core/minimal.hh"

namespace ebda::core {
namespace {

TEST(MinChannels, FormulaBaseCases)
{
    // Paper base cases: 2D -> 6 channels, 3D -> 16 channels.
    EXPECT_EQ(minFullyAdaptiveChannels(1), 2u);
    EXPECT_EQ(minFullyAdaptiveChannels(2), 6u);
    EXPECT_EQ(minFullyAdaptiveChannels(3), 16u);
    EXPECT_EQ(minFullyAdaptiveChannels(4), 40u);
    EXPECT_EQ(minFullyAdaptiveChannels(5), 96u);
}

TEST(RegionScheme, TwoDimensional)
{
    // Figure 7(a): four partitions of two channels each; 2 VCs per
    // dimension; n * 2^n = 8 channels.
    const auto scheme = regionScheme(2);
    ASSERT_EQ(scheme.size(), 4u);
    EXPECT_EQ(channelCount(scheme), 8u);
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(vcsRequired(scheme), (std::vector<int>{2, 2}));
    for (const auto &p : scheme.partitions())
        EXPECT_EQ(p.completePairCount(), 0u);
}

TEST(RegionScheme, ThreeDimensional)
{
    // Figure 9(a): eight partitions of three channels, 24 channels,
    // 4 VCs per dimension.
    const auto scheme = regionScheme(3);
    ASSERT_EQ(scheme.size(), 8u);
    EXPECT_EQ(channelCount(scheme), 24u);
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(vcsRequired(scheme), (std::vector<int>{4, 4, 4}));
}

TEST(MergedScheme, TwoDimensionalMatchesFigure7)
{
    // Figure 7(b) shape: two partitions, 6 channels, VCs (1, 2) with the
    // pair dimension Y.
    const auto scheme = mergedScheme(2);
    ASSERT_EQ(scheme.size(), 2u);
    EXPECT_EQ(channelCount(scheme), 6u);
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(vcsRequired(scheme), (std::vector<int>{1, 2}));
    for (const auto &p : scheme.partitions())
        EXPECT_EQ(p.completePairCount(), 1u);
}

TEST(MergedScheme, PairDimensionSelectable)
{
    // Figure 7(c) shape: pair dimension X gives VCs (2, 1).
    const auto scheme = mergedScheme(2, 0);
    EXPECT_EQ(channelCount(scheme), 6u);
    EXPECT_EQ(vcsRequired(scheme), (std::vector<int>{2, 1}));
    for (const auto &p : scheme.partitions()) {
        EXPECT_EQ(p.pairedDimensions(), std::vector<std::uint8_t>{0});
    }
}

TEST(MergedScheme, ThreeDimensionalMatchesFigure9b)
{
    // Figure 9(b): four partitions, 16 channels, VCs (2, 2, 4).
    const auto scheme = mergedScheme(3);
    ASSERT_EQ(scheme.size(), 4u);
    EXPECT_EQ(channelCount(scheme), 16u);
    EXPECT_EQ(vcsRequired(scheme), (std::vector<int>{2, 2, 4}));
}

/** Parameterized sweep: the merged construction achieves the formula
 *  for every dimensionality and pair-dimension choice. */
class MergedSchemeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(MergedSchemeSweep, FormulaAndStructure)
{
    const auto n = static_cast<std::uint8_t>(std::get<0>(GetParam()));
    const auto pair_dim =
        static_cast<std::uint8_t>(std::get<1>(GetParam()));
    if (pair_dim >= n)
        GTEST_SKIP() << "pair dimension out of range for this n";

    const auto scheme = mergedScheme(n, pair_dim);
    EXPECT_EQ(scheme.size(), std::size_t{1} << (n - 1));
    EXPECT_EQ(channelCount(scheme), minFullyAdaptiveChannels(n));
    EXPECT_TRUE(scheme.validate().ok);

    // Every partition: exactly one complete pair, located at pair_dim,
    // and n+1 members.
    for (const auto &p : scheme.partitions()) {
        EXPECT_EQ(p.size(), static_cast<std::size_t>(n) + 1);
        EXPECT_EQ(p.completePairCount(), 1u);
        EXPECT_EQ(p.pairedDimensions(),
                  std::vector<std::uint8_t>{pair_dim});
    }

    // VC budget: 2^(n-1) on the pair dimension, 2^(n-2) elsewhere.
    const auto vcs = vcsRequired(scheme);
    for (std::uint8_t d = 0; d < n; ++d) {
        const int expected = d == pair_dim
            ? 1 << (n - 1)
            : std::max(1, 1 << (n - 2));
        EXPECT_EQ(vcs[d], expected) << "dim " << static_cast<int>(d);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MergedSchemeSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4,
                                                              5, 6),
                                            ::testing::Values(0, 1, 2)));

/** Region construction sweep. */
class RegionSchemeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RegionSchemeSweep, StructureAndDisjointness)
{
    const auto n = static_cast<std::uint8_t>(GetParam());
    const auto scheme = regionScheme(n);
    EXPECT_EQ(scheme.size(), std::size_t{1} << n);
    EXPECT_EQ(channelCount(scheme),
              static_cast<std::size_t>(n) << n);
    EXPECT_TRUE(scheme.validate().ok);
    for (const auto &p : scheme.partitions()) {
        EXPECT_EQ(p.size(), static_cast<std::size_t>(n));
        EXPECT_EQ(p.completePairCount(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegionSchemeSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MergedScheme, RejectsBadArguments)
{
    EXPECT_DEATH(mergedScheme(0), "out of range");
    EXPECT_DEATH(mergedScheme(3, 5), "out of range");
}

} // namespace
} // namespace ebda::core
