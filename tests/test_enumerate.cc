/**
 * @file
 * Unit tests for the exhaustive scheme enumerator behind Tables 1-3.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/enumerate.hh"
#include "core/turns.hh"

namespace ebda::core {
namespace {

TEST(Enumerate, ClassListHelpers)
{
    EXPECT_EQ(classes2d().size(), 4u);
    EXPECT_EQ(classesNd(3).size(), 6u);
    EXPECT_EQ(classes2d()[0], makeClass(0, Sign::Pos));
}

TEST(Enumerate, TwoPartitionSchemes2d)
{
    // Ordered 2-block Theorem-1 schemes over {X+, X-, Y+, Y-}:
    // sizes (3,1)/(1,3): 4 class triples x 2 orders = 8;
    // sizes (2,2): 3 pairings x 2 orders = 6. Total 14.
    EnumerationOptions opts;
    opts.exactPartitions = 2;
    const auto schemes = enumerateSchemes(classes2d(), opts);
    EXPECT_EQ(schemes.size(), 14u);
    for (const auto &s : schemes)
        EXPECT_TRUE(s.validate().ok) << s.toString();
}

TEST(Enumerate, MaxAdaptiveTwoPartitionSchemesAreTwelve)
{
    // Table 1: of the 14 two-partition schemes, 12 provide the maximum
    // six 90-degree turns; the two same-dimension (2,2) splits
    // ({X+ X-} | {Y+ Y-}) give only four.
    EnumerationOptions opts;
    opts.exactPartitions = 2;
    const auto schemes = enumerateSchemes(classes2d(), opts);
    std::size_t max_adaptive = 0;
    for (const auto &s : schemes) {
        const auto set = TurnSet::extract(s);
        const auto n90 = set.count(TurnKind::Turn90);
        EXPECT_TRUE(n90 == 6 || n90 == 4) << s.toString();
        if (n90 == 6)
            ++max_adaptive;
    }
    EXPECT_EQ(max_adaptive, 12u);
}

TEST(Enumerate, FourPartitionSchemesAreOrderings)
{
    // Table 3: four singleton partitions -> 4! = 24 ordered schemes.
    EnumerationOptions opts;
    opts.exactPartitions = 4;
    const auto schemes = enumerateSchemes(classes2d(), opts);
    EXPECT_EQ(schemes.size(), 24u);
}

TEST(Enumerate, ThreePartitionCount)
{
    // Blocks of sizes (2,1,1): choose the pair {a,b}: C(4,2)=6 ways,
    // all Theorem-1 legal; 3! orders each = 36 ordered schemes.
    EnumerationOptions opts;
    opts.exactPartitions = 3;
    const auto schemes = enumerateSchemes(classes2d(), opts);
    EXPECT_EQ(schemes.size(), 36u);
}

TEST(Enumerate, SinglePartitionImpossible2d)
{
    // All four classes in one partition violates Theorem 1 ("the number
    // of partitions cannot be reduced to one").
    EnumerationOptions opts;
    opts.exactPartitions = 1;
    EXPECT_TRUE(enumerateSchemes(classes2d(), opts).empty());
}

TEST(Enumerate, AllSchemesAreValidAndComplete)
{
    const auto schemes = enumerateSchemes(classes2d());
    EXPECT_EQ(schemes.size(), 14u + 36u + 24u);
    std::set<std::string> keys;
    for (const auto &s : schemes) {
        EXPECT_TRUE(s.validate().ok);
        EXPECT_EQ(s.numClasses(), 4u);
        keys.insert(s.canonicalKey());
    }
    EXPECT_EQ(keys.size(), schemes.size());
}

TEST(Enumerate, MaxResultsCap)
{
    EnumerationOptions opts;
    opts.maxResults = 5;
    EXPECT_EQ(enumerateSchemes(classes2d(), opts).size(), 5u);
}

TEST(Enumerate, RejectsOverlappingClasses)
{
    ClassList bad = {makeClass(0, Sign::Pos), makeClass(0, Sign::Pos)};
    EXPECT_DEATH(enumerateSchemes(bad), "non-overlapping");
}

TEST(Enumerate, EmptyInput)
{
    EXPECT_TRUE(enumerateSchemes({}).empty());
}

} // namespace
} // namespace ebda::core
