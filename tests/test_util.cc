/**
 * @file
 * Unit tests for the util substrate: RNG, statistics, tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace ebda {
namespace {

TEST(SplitMix64, DeterministicAndDistinct)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    SplitMix64 c(43);
    const auto a1 = a.next();
    EXPECT_EQ(a1, b.next());
    EXPECT_NE(a1, c.next());
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(7, 0);
    Rng b(7, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SubstreamsDiffer)
{
    Rng a(7, 0);
    Rng b(7, 1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        if (rng.nextBool(0.3))
            ++hits;
    const double freq = static_cast<double>(hits) / trials;
    EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(17);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    EXPECT_FALSE(rng.nextBool(-0.5));
    EXPECT_TRUE(rng.nextBool(2.0));
}

TEST(Rng, RangeInclusive)
{
    Rng rng(23);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, MeanVarianceMinMax)
{
    StatAccumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulator, MergeMatchesSequential)
{
    StatAccumulator all;
    StatAccumulator left;
    StatAccumulator right;
    Rng rng(31);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble() * 10 - 5;
        all.add(v);
        (i % 2 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty)
{
    StatAccumulator a;
    a.add(1.0);
    a.add(3.0);
    StatAccumulator empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    StatAccumulator b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(StatAccumulator, SumIsExactNotMeanTimesCount)
{
    // Regression: sum() used to be reconstructed as mean()*count(),
    // which loses precision once magnitudes are mixed — Welford's
    // running mean rounds away small addends next to a huge one, so
    // 1e15 + 1e6 * 1.0 reconstructed to ...005.1 instead of ...000.
    StatAccumulator acc;
    acc.add(1e15);
    for (int i = 0; i < 1000000; ++i)
        acc.add(1.0);
    EXPECT_EQ(acc.sum(), 1000000001000000.0);

    // The reconstruction really is lossy here, so this proves sum()
    // no longer goes through the mean.
    EXPECT_NE(acc.mean() * static_cast<double>(acc.count()),
              1000000001000000.0);
}

TEST(StatAccumulator, MergePreservesExactSum)
{
    StatAccumulator left;
    StatAccumulator right;
    left.add(1e15);
    for (int i = 0; i < 1000; ++i)
        right.add(1.0);
    left.merge(right);
    EXPECT_EQ(left.sum(), 1000000000001000.0);
}

TEST(Histogram, PercentilesExact)
{
    Histogram h(16);
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v % 10);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.percentile(0.5), 4u);
    EXPECT_EQ(h.percentile(1.0), 9u);
}

TEST(Histogram, OverflowValuesKeptExactly)
{
    Histogram h(4);
    h.add(2);
    h.add(100);
    h.add(1000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
    EXPECT_EQ(h.percentile(0.3), 2u);
    EXPECT_EQ(h.percentile(0.34), 100u); // nearest-rank: ceil(1.02) = 2nd
    EXPECT_NEAR(h.mean(), (2.0 + 100.0 + 1000.0) / 3.0, 1e-12);
}

TEST(Histogram, ResetClears)
{
    Histogram h(8);
    h.add(3);
    h.add(300);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("| name  | value |"), std::string::npos);
    EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvEscapesSpecials)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"x,y", "q\"z"});
    std::ostringstream os;
    t.writeCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
    EXPECT_EQ(TextTable::num(-7), "-7");
}

TEST(TextTable, RulesDoNotCountAsRows)
{
    TextTable t;
    t.addRow({"a"});
    t.addRule();
    t.addRow({"b"});
    EXPECT_EQ(t.numRows(), 2u);
    // Rendering should not crash with rules and no header.
    EXPECT_FALSE(t.toString().empty());
}

TEST(Logging, WarnGoesToStderr)
{
    ::testing::internal::CaptureStderr();
    EBDA_WARN("value is ", 42);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err, "warn: value is 42\n");
}

TEST(Logging, InformGoesToStdout)
{
    ::testing::internal::CaptureStdout();
    EBDA_INFORM("phase ", 2, " done");
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_EQ(out, "info: phase 2 done\n");
}

TEST(Logging, AssertPassesQuietly)
{
    EBDA_ASSERT(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

TEST(Logging, AssertFailureAborts)
{
    EXPECT_DEATH(EBDA_ASSERT(false, "doom ", 7),
                 "assertion 'false' failed: doom 7");
}

TEST(JsonWriter, FlatObject)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "ebda");
    w.field("latency", 12.5);
    w.field("count", std::uint64_t{7});
    w.field("neg", -3);
    w.field("ok", true);
    w.end();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(), "{\"name\":\"ebda\",\"latency\":12.5,"
                       "\"count\":7,\"neg\":-3,\"ok\":true}");
}

TEST(JsonWriter, NestedStructures)
{
    JsonWriter w;
    w.beginObject();
    w.beginArray("xs");
    w.value(1);
    w.value(2.5);
    w.value(false);
    w.end();
    w.beginObject("inner");
    w.field("k", "v");
    w.end();
    w.end();
    EXPECT_TRUE(w.complete());
    EXPECT_EQ(w.str(),
              "{\"xs\":[1,2.5,false],\"inner\":{\"k\":\"v\"}}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginObject();
    w.field("s", "a\"b\\c\nd\te");
    w.end();
    EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    JsonWriter w;
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::nan(""));
    w.end();
    EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, ArrayOfObjects)
{
    JsonWriter w;
    w.beginArray();
    for (int i = 0; i < 2; ++i) {
        w.beginObject();
        w.field("i", i);
        w.end();
    }
    w.end();
    EXPECT_EQ(w.str(), "[{\"i\":0},{\"i\":1}]");
    EXPECT_TRUE(w.complete());
}

TEST(JsonWriter, EndWithoutScopePanics)
{
    JsonWriter w;
    EXPECT_DEATH(w.end(), "no open scope");
}

} // namespace
} // namespace ebda
