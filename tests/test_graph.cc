/**
 * @file
 * Unit tests for the directed-graph substrate: container semantics,
 * cycle detection with witness extraction, SCC, topological sort.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/cycles.hh"
#include "graph/digraph.hh"
#include "util/random.hh"

namespace ebda::graph {
namespace {

/** Verify a reported witness is an actual cycle in g. */
void
expectValidCycle(const Digraph &g, const std::vector<NodeId> &cycle)
{
    ASSERT_FALSE(cycle.empty());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const NodeId u = cycle[i];
        const NodeId v = cycle[(i + 1) % cycle.size()];
        EXPECT_TRUE(g.hasEdge(u, v))
            << "missing edge " << u << "->" << v << " in witness";
    }
}

TEST(Digraph, EmptyGraph)
{
    Digraph g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_TRUE(isAcyclic(g));
}

TEST(Digraph, AddNodesAndEdges)
{
    Digraph g(3);
    EXPECT_EQ(g.addNode(), 3u);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(1, 0));
    EXPECT_EQ(g.outDegree(0), 1u);
}

TEST(Digraph, DuplicateEdgesIgnored)
{
    Digraph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.successors(0).size(), 1u);
}

TEST(Digraph, ResizeGrowsOnly)
{
    Digraph g(2);
    g.resize(5);
    EXPECT_EQ(g.numNodes(), 5u);
    g.resize(3);
    EXPECT_EQ(g.numNodes(), 5u);
}

TEST(Cycles, ChainIsAcyclic)
{
    Digraph g(5);
    for (NodeId i = 0; i + 1 < 5; ++i)
        g.addEdge(i, i + 1);
    const auto report = findCycle(g);
    EXPECT_TRUE(report.acyclic);
    EXPECT_TRUE(report.cycle.empty());
}

TEST(Cycles, SelfLoopIsCycle)
{
    Digraph g(2);
    g.addEdge(1, 1);
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    expectValidCycle(g, report.cycle);
    EXPECT_EQ(report.cycle.size(), 1u);
}

TEST(Cycles, TriangleWitness)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(3, 0); // off-cycle entry
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    expectValidCycle(g, report.cycle);
    EXPECT_EQ(report.cycle.size(), 3u);
}

TEST(Cycles, DiamondDagIsAcyclic)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    EXPECT_TRUE(isAcyclic(g));
}

TEST(Cycles, CycleBehindLongTail)
{
    // A long acyclic tail leading into a late 2-cycle exercises the
    // iterative DFS frame handling.
    Digraph g(100);
    for (NodeId i = 0; i + 1 < 99; ++i)
        g.addEdge(i, i + 1);
    g.addEdge(98, 99);
    g.addEdge(99, 98);
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    expectValidCycle(g, report.cycle);
    EXPECT_EQ(report.cycle.size(), 2u);
}

TEST(Cycles, LargeDeepGraphNoStackOverflow)
{
    // 200k-node path: a recursive DFS would overflow the stack.
    const std::size_t n = 200000;
    Digraph g(n);
    for (NodeId i = 0; i + 1 < n; ++i)
        g.addEdge(i, i + 1);
    EXPECT_TRUE(isAcyclic(g));
}

TEST(Scc, ComponentsOfTwoTriangles)
{
    Digraph g(7);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 3);
    g.addEdge(2, 3); // bridge
    std::uint32_t count = 0;
    const auto comp = stronglyConnectedComponents(g, &count);
    EXPECT_EQ(count, 3u); // two triangles + isolated node 6
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_EQ(comp[4], comp[5]);
    EXPECT_NE(comp[0], comp[3]);
    EXPECT_NE(comp[6], comp[0]);
    EXPECT_NE(comp[6], comp[3]);
}

TEST(Scc, DagHasSingletonComponents)
{
    Digraph g(5);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 3);
    std::uint32_t count = 0;
    const auto comp = stronglyConnectedComponents(g, &count);
    EXPECT_EQ(count, 5u);
    std::set<std::uint32_t> distinct(comp.begin(), comp.end());
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(TopologicalSort, RespectsEdges)
{
    Digraph g(6);
    g.addEdge(5, 2);
    g.addEdge(5, 0);
    g.addEdge(4, 0);
    g.addEdge(4, 1);
    g.addEdge(2, 3);
    g.addEdge(3, 1);
    const auto order = topologicalSort(g);
    ASSERT_TRUE(order.has_value());
    std::vector<std::size_t> pos(6);
    for (std::size_t i = 0; i < order->size(); ++i)
        pos[(*order)[i]] = i;
    for (NodeId u = 0; u < 6; ++u)
        for (NodeId v : g.successors(u))
            EXPECT_LT(pos[u], pos[v]);
}

TEST(TopologicalSort, FailsOnCycle)
{
    Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    EXPECT_FALSE(topologicalSort(g).has_value());
}

TEST(NumNodesOnCycles, CountsExactly)
{
    Digraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 0); // 2-cycle: nodes 0, 1
    g.addEdge(2, 2); // self-loop: node 2
    g.addEdge(3, 4); // acyclic tail: nodes 3, 4, 5 clean
    g.addEdge(4, 5);
    EXPECT_EQ(numNodesOnCycles(g), 3u);
}

TEST(Cycles, RandomGraphsAgreeWithToposort)
{
    // Property: findCycle and topologicalSort must agree on cyclicity.
    Rng rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + rng.nextBounded(30);
        Digraph g(n);
        const std::size_t edges = rng.nextBounded(3 * n);
        for (std::size_t e = 0; e < edges; ++e) {
            g.addEdge(static_cast<NodeId>(rng.nextBounded(n)),
                      static_cast<NodeId>(rng.nextBounded(n)));
        }
        const auto report = findCycle(g);
        EXPECT_EQ(report.acyclic, topologicalSort(g).has_value());
        if (!report.acyclic)
            expectValidCycle(g, report.cycle);
    }
}

TEST(Cycles, CycleInDisconnectedComponentIsFound)
{
    // Component {0,1,2} is an acyclic chain; component {3,4,5} hides
    // the triangle. No edges join the two.
    Digraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    g.addEdge(4, 5);
    g.addEdge(5, 3);
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    expectValidCycle(g, report.cycle);
    for (const NodeId n : report.cycle)
        EXPECT_GE(n, 3u) << "cycle must lie in the second component";
}

TEST(Cycles, DisconnectedAcyclicComponentsAndIsolatedNodes)
{
    Digraph g(7); // two chains + self-contained isolated nodes 4..6
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_TRUE(findCycle(g).acyclic);
    const auto order = topologicalSort(g);
    ASSERT_TRUE(order.has_value());
    EXPECT_EQ(order->size(), 7u);
}

TEST(Cycles, SelfLoopAmidDisconnectedDag)
{
    // The only cycle is a self-loop buried in an otherwise acyclic,
    // disconnected graph.
    Digraph g(5);
    g.addEdge(0, 1);
    g.addEdge(3, 4);
    g.addEdge(2, 2);
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    ASSERT_EQ(report.cycle.size(), 1u);
    EXPECT_EQ(report.cycle[0], 2u);
}

TEST(Cycles, MultiEdgeDoesNotFabricateACycle)
{
    // Parallel edges collapse (addEdge dedups); a doubled edge u->v
    // must not read as the 2-cycle u->v->u.
    Digraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(1, 2);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(findCycle(g).acyclic);
    // ... while a genuine antiparallel pair is a cycle.
    g.addEdge(1, 0);
    const auto report = findCycle(g);
    EXPECT_FALSE(report.acyclic);
    expectValidCycle(g, report.cycle);
    EXPECT_EQ(report.cycle.size(), 2u);
}

TEST(Scc, SelfLoopAndMultiEdgeComponents)
{
    // A self-loop makes a singleton component that is genuinely
    // cyclic; duplicate edges change nothing.
    Digraph g(4);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    std::uint32_t count = 0;
    const auto comp = stronglyConnectedComponents(g, &count);
    EXPECT_EQ(count, 4u);
    std::set<std::uint32_t> distinct(comp.begin(), comp.end());
    EXPECT_EQ(distinct.size(), 4u);
}

TEST(Scc, DisconnectedCyclesGetDistinctComponents)
{
    Digraph g(6);
    for (NodeId u = 0; u < 3; ++u)
        g.addEdge(u, (u + 1) % 3);
    for (NodeId u = 3; u < 6; ++u)
        g.addEdge(u, u == 5 ? 3 : u + 1);
    std::uint32_t count = 0;
    const auto comp = stronglyConnectedComponents(g, &count);
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(comp[0], comp[2]);
    EXPECT_EQ(comp[3], comp[5]);
    EXPECT_NE(comp[0], comp[3]);
}

} // namespace
} // namespace ebda::graph
