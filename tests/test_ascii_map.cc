/**
 * @file
 * ASCII-map DSL: grammar coverage (connector runs, VC markers, one-way
 * and dead links, edge-list lines), classification and coordinates,
 * equivalence with factory-built networks, and position-named parse
 * errors.
 */

#include <gtest/gtest.h>

#include <string>

#include "topo/ascii_map.hh"
#include "topo/network.hh"

namespace ebda::topo {
namespace {

template <typename Fn>
void
expectParseError(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected std::invalid_argument containing '" << needle
               << "'";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(AsciiMap, GridWithVcMarkers)
{
    const auto parsed = parseAsciiMap("A--B==C\n"
                                      "|     !\n"
                                      "D--E--F\n");
    const Network &net = parsed.network;
    EXPECT_TRUE(parsed.deadLinks.empty());
    EXPECT_EQ(net.kind(), TopologyKind::Custom);
    EXPECT_EQ(net.numNodes(), 6u);
    // Six undirected connections, two directed links each.
    EXPECT_EQ(net.numLinks(), 12u);
    // VCs: A-B 1, B=C 2, A|D 1, C!F 2, D-E 1, E-F 1 (per direction).
    EXPECT_EQ(net.numChannels(), 2u * (1 + 2 + 1 + 2 + 1 + 1));

    // Node ids in ASCII order: A..F -> 0..5.
    ASSERT_TRUE(net.findNode("A").has_value());
    ASSERT_TRUE(net.findNode("F").has_value());
    const NodeId a = *net.findNode("A"), b = *net.findNode("B"),
                 c = *net.findNode("C"), d = *net.findNode("D"),
                 f = *net.findNode("F");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(f, 5u);
    EXPECT_FALSE(net.findNode("Z").has_value());

    const auto ab = net.linkBetween(a, b);
    ASSERT_TRUE(ab.has_value());
    EXPECT_EQ(net.vcsOnLink(*ab), 1);
    EXPECT_EQ(net.link(*ab).dim, 0);
    EXPECT_EQ(net.link(*ab).travelSign, core::Sign::Pos);

    const auto bc = net.linkBetween(b, c);
    ASSERT_TRUE(bc.has_value());
    EXPECT_EQ(net.vcsOnLink(*bc), 2);

    const auto ad = net.linkBetween(a, d);
    ASSERT_TRUE(ad.has_value());
    EXPECT_EQ(net.link(*ad).dim, 1);
    const auto cf = net.linkBetween(c, f);
    ASSERT_TRUE(cf.has_value());
    EXPECT_EQ(net.vcsOnLink(*cf), 2);

    // Coordinates are (column, row) character positions.
    EXPECT_EQ(net.coord(a), (Coord{0, 0}));
    EXPECT_EQ(net.coord(b), (Coord{3, 0}));
    EXPECT_EQ(net.coord(f), (Coord{6, 2}));

    // Unlinked diagonal pairs route over BFS distance.
    EXPECT_EQ(net.distance(a, f), 3);
    EXPECT_EQ(net.distance(a, b), 1);
}

TEST(AsciiMap, OneWayRuns)
{
    const auto parsed = parseAsciiMap("A->B<-C\n");
    const Network &net = parsed.network;
    const NodeId a = *net.findNode("A"), b = *net.findNode("B"),
                 c = *net.findNode("C");
    EXPECT_EQ(net.numLinks(), 2u);
    EXPECT_TRUE(net.linkBetween(a, b).has_value());
    EXPECT_FALSE(net.linkBetween(b, a).has_value());
    EXPECT_TRUE(net.linkBetween(c, b).has_value());
    EXPECT_FALSE(net.linkBetween(b, c).has_value());
    // One-way connectivity reflected in BFS distances.
    EXPECT_EQ(net.distance(a, b), 1);
    EXPECT_EQ(net.distance(b, a), -1);
}

TEST(AsciiMap, DeadLinksAreRemovedAndReported)
{
    const auto parsed = parseAsciiMap("A--B\n"
                                      "x  |\n"
                                      "C--D\n");
    const Network &net = parsed.network;
    const NodeId a = *net.findNode("A"), c = *net.findNode("C");
    EXPECT_FALSE(net.linkBetween(a, c).has_value());
    EXPECT_FALSE(net.linkBetween(c, a).has_value());
    ASSERT_EQ(parsed.deadLinks.size(), 2u);
    // Both directions of the bidirectional dead link are listed.
    EXPECT_EQ(parsed.deadLinks[0], (std::pair<NodeId, NodeId>{a, c}));
    EXPECT_EQ(parsed.deadLinks[1], (std::pair<NodeId, NodeId>{c, a}));
    // The survivors still connect A to C the long way round.
    EXPECT_EQ(net.distance(a, c), 3);
}

TEST(AsciiMap, EdgeListLines)
{
    // A complete K4 no planar picture can draw: isolated nodes plus an
    // explicit edge list with VC and direction markers.
    const auto parsed = parseAsciiMap("A B\n"
                                      "C D\n"
                                      "+ A-B:3 A=C B-C\n"
                                      "+ A>D  BxD  C-D\n");
    const Network &net = parsed.network;
    const NodeId a = *net.findNode("A"), b = *net.findNode("B"),
                 c = *net.findNode("C"), d = *net.findNode("D");

    const auto ab = net.linkBetween(a, b);
    ASSERT_TRUE(ab.has_value());
    EXPECT_EQ(net.vcsOnLink(*ab), 3);
    EXPECT_EQ(net.link(*ab).dim, kUnclassifiedDim);
    EXPECT_EQ(net.vcsOnLink(*net.linkBetween(b, a)), 3);
    EXPECT_EQ(net.vcsOnLink(*net.linkBetween(a, c)), 2);

    // A>D is one-way.
    EXPECT_TRUE(net.linkBetween(a, d).has_value());
    EXPECT_FALSE(net.linkBetween(d, a).has_value());

    // BxD is dead in both directions.
    EXPECT_FALSE(net.linkBetween(b, d).has_value());
    ASSERT_EQ(parsed.deadLinks.size(), 2u);
    EXPECT_EQ(parsed.deadLinks[0], (std::pair<NodeId, NodeId>{b, d}));

    // Unclassified links never satisfy a channel-class query.
    for (ChannelId ch = 0; ch < net.numChannels(); ++ch)
        EXPECT_FALSE(net.channelInClass(
            ch, core::ChannelClass{0, core::Sign::Pos, 0}));
}

TEST(AsciiMap, DefaultVcsAppliesToPlainConnectors)
{
    AsciiMapOptions opts;
    opts.defaultVcs = 2;
    const auto parsed = parseAsciiMap("A--B\n"
                                      "|  |\n"
                                      "C--D\n"
                                      "+ A-D:1\n",
                                      opts);
    const Network &net = parsed.network;
    const NodeId a = *net.findNode("A"), b = *net.findNode("B"),
                 d = *net.findNode("D");
    EXPECT_EQ(net.vcsOnLink(*net.linkBetween(a, b)), 2);
    // Explicit :1 beats the default.
    EXPECT_EQ(net.vcsOnLink(*net.linkBetween(a, d)), 1);
}

TEST(AsciiMap, EquivalentToFactoryMesh)
{
    // A drawn 3x3 grid must be isomorphic to mesh({3,3}) under the
    // coordinate mapping (ASCII cols/rows scale by 2).
    const auto parsed = parseAsciiMap("A-B-C\n"
                                      "| | |\n"
                                      "D-E-F\n"
                                      "| | |\n"
                                      "G-H-I\n");
    const Network &drawn = parsed.network;
    const auto factory = Network::mesh({3, 3}, {1, 1});
    ASSERT_EQ(drawn.numNodes(), factory.numNodes());
    EXPECT_EQ(drawn.numLinks(), factory.numLinks());
    EXPECT_EQ(drawn.numChannels(), factory.numChannels());

    auto drawnAt = [&](int x, int y) {
        return drawn.node(Coord{2 * x, 2 * y});
    };
    for (int sy = 0; sy < 3; ++sy)
        for (int sx = 0; sx < 3; ++sx)
            for (int ty = 0; ty < 3; ++ty)
                for (int tx = 0; tx < 3; ++tx)
                    EXPECT_EQ(
                        drawn.distance(drawnAt(sx, sy), drawnAt(tx, ty)),
                        factory.distance(factory.node({sx, sy}),
                                         factory.node({tx, ty})));
}

TEST(AsciiMap, ParseErrorsArePositionNamed)
{
    expectParseError([] { parseAsciiMap("A--B\nA--C\n"); },
                     "line 2, col 1: duplicate node 'A'");
    expectParseError([] { parseAsciiMap("A--\n"); },
                     "dangling horizontal link from 'A'");
    expectParseError([] { parseAsciiMap("A\n|\n"); },
                     "dangling vertical link from 'A'");
    expectParseError([] { parseAsciiMap("A -B\n"); }, "stray connector");
    expectParseError([] { parseAsciiMap("A<->B\n"); },
                     "conflicting direction markers");
    expectParseError([] { parseAsciiMap("A@B\n"); },
                     "unexpected character '@'");
    expectParseError([] { parseAsciiMap("A B\n+ A-Z\n"); },
                     "unknown node 'Z'");
    expectParseError([] { parseAsciiMap("A B\n+ AB\n"); },
                     "bad edge token 'AB'");
    expectParseError([] { parseAsciiMap("A B\n+ A-A\n"); },
                     "self-link");
    expectParseError([] { parseAsciiMap("A B\n+ A-B:0\n"); },
                     "VC count must be >= 1");
    expectParseError([] { parseAsciiMap("A B\n+ A-B:q\n"); },
                     "bad VC suffix");
    expectParseError([] { parseAsciiMap("+ A-B\nA B\n"); },
                     "picture rows may not follow edge-list lines");
    expectParseError([] { parseAsciiMap("   \n"); }, "no nodes");
    expectParseError(
        [] {
            AsciiMapOptions opts;
            opts.defaultVcs = 0;
            parseAsciiMap("A-B\n", opts);
        },
        "defaultVcs");
}

} // namespace
} // namespace ebda::topo
