/**
 * @file
 * Sweep-engine tests: spec parsing/expansion, canonical hashing,
 * thread-pool behaviour, serial-vs-parallel bit-identity, cache
 * hits/persistence/corruption tolerance, and simulator determinism
 * (two runs of the same config must agree exactly — the property the
 * whole caching scheme rests on).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <unistd.h>

#include "sim/sim_json.hh"
#include "sweep/result_cache.hh"
#include "sweep/router_factory.hh"
#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"
#include "sweep/thread_pool.hh"
#include "util/cli.hh"
#include "util/json.hh"

namespace {

using namespace ebda;

const char *kSpecText = R"({
  "name": "t",
  "topology": {"type": "mesh", "dims": [4, 4], "vcs": [2, 2]},
  "routers": ["xy", "fig7b"],
  "patterns": ["uniform", "transpose"],
  "rates": [0.05, 0.1],
  "sim": {"seed": 7, "warmupCycles": 100, "measureCycles": 300,
          "drainCycles": 3000, "watchdogCycles": 1500}
})";

sweep::SweepSpec
specOrDie(const std::string &text)
{
    std::string err;
    const auto spec = sweep::SweepSpec::parse(text, &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

/** RAII scratch directory under the test's working directory. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path("sweep-test-" + tag + "-"
               + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

// ---------------------------------------------------------------- spec

TEST(SweepSpec, ExpandsFullGrid)
{
    const auto spec = specOrDie(kSpecText);
    EXPECT_EQ(spec.jobCount(), 2u * 2u * 2u);
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 8u);

    std::set<std::uint64_t> keys;
    std::set<std::uint64_t> seeds;
    for (const auto &job : jobs) {
        keys.insert(job.key);
        seeds.insert(job.cfg.seed);
        EXPECT_EQ(job.key, sweep::fnv1a64(job.canonical));
        EXPECT_EQ(job.cfg.warmupCycles, 100u);
    }
    // Content addressing: all grid points distinct, all derived seeds
    // distinct.
    EXPECT_EQ(keys.size(), jobs.size());
    EXPECT_EQ(seeds.size(), jobs.size());
}

TEST(SweepSpec, ExpansionIsReproducible)
{
    const auto a = specOrDie(kSpecText).expand();
    const auto b = specOrDie(kSpecText).expand();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].canonical, b[i].canonical);
        EXPECT_EQ(a[i].cfg.seed, b[i].cfg.seed);
    }
}

TEST(SweepSpec, TaggedTopologiesParseAndBuild)
{
    const auto spec = specOrDie(R"({
      "topologies": [
        {"type": "mesh", "dims": [4, 4], "vcs": [1, 1]},
        {"type": "torus", "params": {"dims": [4, 4], "vcs": [2, 2]}},
        {"kind": "dragonfly", "params": {"a": 4, "p": 2, "h": 2}},
        {"type": "fullmesh", "params": {"nodes": 8}},
        {"type": "ascii", "params": {"map": "A-B\n|\nC\n"}}
      ],
      "routers": ["updown"]
    })");
    ASSERT_EQ(spec.topologies.size(), 5u);
    EXPECT_EQ(spec.topologies[0].kind, sweep::TopologySpec::Kind::Mesh);
    EXPECT_EQ(spec.topologies[1].kind, sweep::TopologySpec::Kind::Torus);
    EXPECT_EQ(spec.topologies[1].vcs, (std::vector<int>{2, 2}));
    EXPECT_EQ(spec.topologies[2].kind,
              sweep::TopologySpec::Kind::Dragonfly);
    EXPECT_EQ(spec.topologies[2].a, 4);
    EXPECT_EQ(spec.topologies[2].localVcs, 2); // default
    EXPECT_EQ(spec.topologies[3].nodes, 8);
    EXPECT_EQ(spec.topologies[4].kind, sweep::TopologySpec::Kind::Ascii);

    // Every kind materializes.
    EXPECT_EQ(spec.topologies[2].build().numNodes(), 36u);
    EXPECT_EQ(spec.topologies[3].build().numLinks(), 56u);
    EXPECT_EQ(spec.topologies[4].build().numNodes(), 3u);
}

TEST(SweepSpec, TopologyJsonRoundTrips)
{
    const auto spec = specOrDie(R"({
      "topologies": [
        {"type": "torus", "dims": [4, 4], "vcs": [2, 2]},
        {"type": "dragonfly",
         "params": {"a": 2, "p": 1, "h": 1, "localVcs": 3}},
        {"type": "fullmesh", "params": {"nodes": 5, "vcs": 2}},
        {"type": "ascii",
         "params": {"map": "A-B\n", "defaultVcs": 2}}
      ],
      "routers": ["updown"]
    })");
    for (const auto &topo : spec.topologies) {
        JsonWriter w;
        w.beginObject();
        topo.toJson(w, "topology");
        w.end();
        std::string err;
        const auto doc = parseJson(w.str(), &err);
        ASSERT_TRUE(doc) << err;
        const auto *obj = doc->find("topology");
        ASSERT_NE(obj, nullptr);
        const auto back =
            sweep::TopologySpec::fromJson(*obj, &err, "topology");
        ASSERT_TRUE(back) << err;

        // Re-rendering the reparsed spec must reproduce the bytes —
        // the cache key depends on it.
        JsonWriter w2;
        w2.beginObject();
        back->toJson(w2, "topology");
        w2.end();
        EXPECT_EQ(w.str(), w2.str()) << topo.toString();
        EXPECT_EQ(back->toString(), topo.toString());
    }
}

TEST(SweepSpec, SweepsRunOnNewTopologyKinds)
{
    const auto spec = specOrDie(R"({
      "topologies": [
        {"type": "fullmesh", "params": {"nodes": 6}},
        {"type": "ascii", "params": {"map": "A-B-C\n"}}
      ],
      "routers": ["updown"],
      "rates": [0.02],
      "sim": {"seed": 3, "warmupCycles": 50, "measureCycles": 150,
              "drainCycles": 2000, "watchdogCycles": 1000}
    })");
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_NE(jobs[0].canonical.find("\"type\":\"fullmesh\""),
              std::string::npos);
    for (const auto &job : jobs) {
        const auto out = sweep::runJob(job);
        ASSERT_TRUE(out.ok) << out.error;
        EXPECT_FALSE(out.result.deadlocked);
    }
}

/** A spec may pair a pattern with a network it is undefined on; the
 *  TrafficGenerator's construction-time routability guards must turn
 *  that grid point into a clean per-job failure (with the guard's
 *  message), never an assert or a crash. */
TEST(SweepSpec, UnroutablePatternFailsJobCleanly)
{
    // transpose on a non-palindromic mesh, bitcomp on 12 nodes.
    const auto spec = specOrDie(R"({
      "topologies": [
        {"type": "mesh", "dims": [2, 8], "vcs": [1, 1]},
        {"type": "mesh", "dims": [3, 4], "vcs": [1, 1]}
      ],
      "routers": ["xy"],
      "patterns": ["transpose", "bitcomp", "uniform"],
      "rates": [0.02],
      "sim": {"seed": 3, "warmupCycles": 50, "measureCycles": 150,
              "drainCycles": 2000, "watchdogCycles": 1000}
    })");
    const auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 6u);
    for (const auto &job : jobs) {
        const auto out = sweep::runJob(job);
        const auto nodes = job.topo.build().numNodes();
        if (job.pattern == sim::TrafficPattern::Transpose) {
            // Both 2x8 and 3x4 have non-palindromic radix vectors.
            EXPECT_FALSE(out.ok);
            EXPECT_NE(out.error.find("palindromic"),
                      std::string::npos)
                << out.error;
        } else if (job.pattern == sim::TrafficPattern::BitComplement
                   && nodes == 12u) {
            EXPECT_FALSE(out.ok);
            EXPECT_NE(out.error.find("power-of-two"),
                      std::string::npos)
                << out.error;
        } else {
            // uniform everywhere; bitcomp on 2x8 = 16 nodes is fine.
            EXPECT_TRUE(out.ok) << out.error;
        }
    }
    // A palindromic non-square radix vector is fine for transpose.
    const auto ok_spec = specOrDie(R"({
      "topology": {"type": "mesh", "dims": [2, 4, 2], "vcs": [1, 1, 1]},
      "routers": ["xy"],
      "patterns": ["transpose"],
      "rates": [0.02],
      "sim": {"seed": 3, "warmupCycles": 50, "measureCycles": 150,
              "drainCycles": 2000, "watchdogCycles": 1000}
    })");
    const auto ok_jobs = ok_spec.expand();
    ASSERT_EQ(ok_jobs.size(), 1u);
    EXPECT_TRUE(sweep::runJob(ok_jobs[0]).ok);
}

/** Cache-key stability across the schedMode addition: a spec without
 *  the field must canonicalize without it (Auto is never serialized),
 *  so pre-existing caches keep hitting; an explicit mode is part of
 *  the grid point and round-trips. */
TEST(SweepSpec, SchedModeCanonicalizationAndOverride)
{
    const auto plain = specOrDie(kSpecText).expand();
    for (const auto &job : plain) {
        EXPECT_EQ(job.cfg.schedMode, sim::SchedMode::Auto);
        EXPECT_EQ(job.canonical.find("schedMode"), std::string::npos)
            << job.canonical;
    }

    const auto pinned = specOrDie(R"({
      "name": "t",
      "topology": {"type": "mesh", "dims": [4, 4], "vcs": [2, 2]},
      "routers": ["xy"],
      "patterns": ["uniform"],
      "rates": [0.02],
      "sim": {"seed": 7, "warmupCycles": 50, "measureCycles": 150,
              "drainCycles": 2000, "watchdogCycles": 1000,
              "schedMode": "event"}
    })").expand();
    ASSERT_EQ(pinned.size(), 1u);
    EXPECT_EQ(pinned[0].cfg.schedMode, sim::SchedMode::Event);
    EXPECT_NE(pinned[0].canonical.find("\"schedMode\":\"event\""),
              std::string::npos);
    const auto out = sweep::runJob(pinned[0]);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.result.schedMode, sim::SchedMode::Event);

    // The runner-level override (ebda_sweep run --sched) forces the
    // backend without touching the job or its key.
    sweep::RunOptions opts;
    opts.schedMode = sim::SchedMode::Cycle;
    const auto forced = sweep::runJob(pinned[0], opts);
    ASSERT_TRUE(forced.ok) << forced.error;
    EXPECT_EQ(forced.result.schedMode, sim::SchedMode::Cycle);

    std::string err;
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology": {"type": "mesh", "dims": [4, 4]},
            "routers": ["xy"], "patterns": ["uniform"],
            "rates": [0.1], "sim": {"schedMode": "warp"}})",
        &err));
    EXPECT_NE(err.find("schedMode"), std::string::npos) << err;
}

TEST(SweepSpec, RejectsBadTopologyParams)
{
    std::string err;
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology": {"type": "dragonfly"}, "routers": ["updown"]})",
        &err));
    EXPECT_NE(err.find("params"), std::string::npos);
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology": {"type": "dragonfly", "params": {"a": 1}},
            "routers": ["updown"]})",
        &err));
    EXPECT_NE(err.find("topology.params.a"), std::string::npos);
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology": {"type": "fullmesh",
                         "params": {"nodes": 4, "typo": 1}},
            "routers": ["updown"]})",
        &err));
    EXPECT_NE(err.find("unknown key 'typo'"), std::string::npos);
    // DSL syntax errors surface at parse time with their position.
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology": {"type": "ascii", "params": {"map": "A--\n"}},
            "routers": ["updown"]})",
        &err));
    EXPECT_NE(err.find("dangling horizontal link"), std::string::npos);
}

TEST(SweepSpec, RejectsUnknownRouterAndKeys)
{
    std::string err;
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":["warp-drive"]})",
        &err));
    EXPECT_NE(err.find("warp-drive"), std::string::npos);

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":["xy"],"ratez":[0.1]})",
        &err));
    EXPECT_FALSE(sweep::SweepSpec::parse("not json", &err));
}

TEST(SweepSpec, MasterSeedChangesDerivedSeeds)
{
    auto spec = specOrDie(kSpecText);
    const auto jobs_a = spec.expand();
    spec.base.seed = 8;
    const auto jobs_b = spec.expand();
    // Different master seed, same grid: same shape, different streams.
    ASSERT_EQ(jobs_a.size(), jobs_b.size());
    EXPECT_NE(jobs_a[0].cfg.seed, jobs_b[0].cfg.seed);
    EXPECT_NE(jobs_a[0].key, jobs_b[0].key);
}

TEST(SweepSpec, Fnv1aKnownVectors)
{
    EXPECT_EQ(sweep::fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(sweep::fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(sweep::keyToHex(0x1aULL), "000000000000001a");
}

// ---------------------------------------------------------- router spec

TEST(RouterFactory, ChecksSpecsWithoutANetwork)
{
    EXPECT_FALSE(sweep::checkRouterSpec("xy"));
    EXPECT_FALSE(sweep::checkRouterSpec("duato"));
    EXPECT_FALSE(sweep::checkRouterSpec("region:2"));
    EXPECT_FALSE(sweep::checkRouterSpec("ebda:{X+ X- Y-} -> {Y+}"));
    EXPECT_TRUE(sweep::checkRouterSpec("nope"));
    EXPECT_TRUE(sweep::checkRouterSpec("region:zero"));
    EXPECT_TRUE(sweep::checkRouterSpec("ebda:{X+ X- Y+ Y-}"));
    // Structural engine specs, bare and parameterized.
    EXPECT_FALSE(sweep::checkRouterSpec("updown"));
    EXPECT_FALSE(sweep::checkRouterSpec("updown:3"));
    EXPECT_FALSE(sweep::checkRouterSpec("dragonfly-min"));
    EXPECT_FALSE(sweep::checkRouterSpec("dragonfly-min:4"));
    EXPECT_FALSE(sweep::checkRouterSpec("dragonfly-noescape:4"));
    EXPECT_FALSE(sweep::checkRouterSpec("fullmesh-2hop"));
    EXPECT_FALSE(sweep::checkRouterSpec("fullmesh-naive"));
    EXPECT_TRUE(sweep::checkRouterSpec("updown:minus"));
    EXPECT_TRUE(sweep::checkRouterSpec("dragonfly-min:1"));
}

TEST(RouterFactory, StructuralEnginesAndGridGuard)
{
    std::string err;

    const auto df = topo::Network::dragonfly(4, 2, 2);
    ASSERT_TRUE(sweep::makeRouter(df, "dragonfly-min", &err)) << err;
    ASSERT_TRUE(sweep::makeRouter(df, "dragonfly-min:4", &err)) << err;
    ASSERT_TRUE(sweep::makeRouter(df, "dragonfly-noescape", &err)) << err;
    ASSERT_TRUE(sweep::makeRouter(df, "updown", &err)) << err;
    ASSERT_TRUE(sweep::makeRouter(df, "updown:35", &err)) << err;
    EXPECT_FALSE(sweep::makeRouter(df, "updown:36", &err));

    const auto fm = topo::Network::fullMesh(5);
    ASSERT_TRUE(sweep::makeRouter(fm, "fullmesh-2hop", &err)) << err;
    ASSERT_TRUE(sweep::makeRouter(fm, "fullmesh-naive", &err)) << err;
    // Structural but wrong structure: a clear factory error, not a
    // crash.
    EXPECT_FALSE(sweep::makeRouter(fm, "dragonfly-min:5", &err));

    // Grid-coordinate routers on a custom graph are refused up front.
    EXPECT_FALSE(sweep::makeRouter(fm, "xy", &err));
    EXPECT_NE(err.find("requires a mesh/torus grid"), std::string::npos);
    EXPECT_FALSE(sweep::makeRouter(fm, "nope", &err));
    EXPECT_NE(err.find("unknown router"), std::string::npos);

    // The factory shape lets dragonfly sweeps omit ':a'; a custom
    // graph needs it spelled out.
    const auto mesh = topo::Network::mesh({4, 4}, {1, 1});
    EXPECT_FALSE(sweep::makeRouter(mesh, "dragonfly-min", &err));
    EXPECT_NE(err.find("group size"), std::string::npos);
}

TEST(RouterFactory, BuildsRelations)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    std::string err;
    for (const char *spec :
         {"xy", "yx", "odd-even", "west-first", "north-last",
          "negative-first", "duato", "fig7b", "region:2",
          "ebda:{X+ X- Y-} -> {Y+}"}) {
        const auto r = sweep::makeRouter(net, spec, &err);
        ASSERT_TRUE(r) << spec << ": " << err;
    }
    EXPECT_FALSE(sweep::makeRouter(net, "nope", &err));
}

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    sweep::ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(), [&](std::size_t i) {
        counts[i].fetch_add(1);
    });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    sweep::ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(100, [&](std::size_t i) {
            sum.fetch_add(static_cast<int>(i));
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, PropagatesExceptions)
{
    sweep::ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(10,
                                  [&](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // Pool must survive a failed batch.
    std::atomic<int> ok{0};
    pool.parallelFor(10, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
}

// ----------------------------------------------------------- determinism

TEST(SweepDeterminism, SimulatorRunIsAPureFunctionOfConfig)
{
    const auto spec = specOrDie(kSpecText);
    const auto jobs = spec.expand();
    const auto a = sweep::runJob(jobs[1]);
    const auto b = sweep::runJob(jobs[1]);
    ASSERT_TRUE(a.ok && b.ok);
    // Exact equality, via the exact-double serialization.
    EXPECT_EQ(sim::toJson(a.result), sim::toJson(b.result));
    EXPECT_GT(a.result.packetsMeasured, 0u);
}

TEST(SweepDeterminism, ParallelBitIdenticalToSerial)
{
    const auto jobs = specOrDie(kSpecText).expand();

    sweep::RunOptions serial;
    serial.threads = 1;
    const auto r1 = sweep::runSweep(jobs, serial);

    sweep::RunOptions parallel;
    parallel.threads = 4;
    const auto r4 = sweep::runSweep(jobs, parallel);

    ASSERT_EQ(r1.outcomes.size(), r4.outcomes.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(r1.outcomes[i].ok);
        ASSERT_TRUE(r4.outcomes[i].ok);
        EXPECT_EQ(sim::toJson(r1.outcomes[i].result),
                  sim::toJson(r4.outcomes[i].result))
            << "job " << i << " (" << jobs[i].router << ")";
    }
    EXPECT_EQ(r1.simulated, jobs.size());
    EXPECT_EQ(r4.simulated, jobs.size());
}

// ----------------------------------------------------------------- cache

TEST(ResultCache, HitReturnsStoredResultWithoutRerunning)
{
    const ScratchDir dir("hit");
    const auto jobs = specOrDie(kSpecText).expand();

    std::atomic<std::uint64_t> runs{0};

    sweep::ResultCache cold(dir.path);
    sweep::RunOptions opts;
    opts.threads = 2;
    opts.cache = &cold;
    opts.runCounter = &runs;
    const auto first = sweep::runSweep(jobs, opts);
    EXPECT_EQ(runs.load(), jobs.size());
    EXPECT_EQ(first.cacheMisses, jobs.size());

    // Fresh cache object, same directory: everything must come back
    // from disk with zero simulations executed.
    sweep::ResultCache warm(dir.path);
    EXPECT_EQ(warm.entries(), jobs.size());
    opts.cache = &warm;
    const auto second = sweep::runSweep(jobs, opts);
    EXPECT_EQ(runs.load(), jobs.size()) << "cache hit re-ran a job";
    EXPECT_EQ(second.cacheHits, jobs.size());
    EXPECT_EQ(second.simulated, 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(second.outcomes[i].fromCache);
        EXPECT_EQ(sim::toJson(second.outcomes[i].result),
                  sim::toJson(first.outcomes[i].result));
    }
}

TEST(ResultCache, CorruptedLinesAreSkippedNotFatal)
{
    const ScratchDir dir("corrupt");
    std::filesystem::create_directories(dir.path);

    // One valid binary record, plus a stale legacy cache.jsonl full of
    // garbage: migration must skip the garbage, count it, and keep the
    // record served.
    sim::SimResult r;
    r.avgLatency = 12.5;
    r.packetsMeasured = 42;
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0xabcdULL, "{}", r);
    }
    {
        std::ofstream out(sweep::ResultCache::cacheFile(dir.path),
                          std::ios::app);
        out << "this is not json\n";
        out << "{\"key\":\"zzzz\",\"result\":{}}\n";
        out << "{\"truncated\":\n";
    }

    sweep::ResultCache cache(dir.path);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.corruptedLines(), 3u);
    const auto hit = cache.lookup(0xabcdULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->avgLatency, 12.5);
    EXPECT_EQ(hit->packetsMeasured, 42u);
}

TEST(ResultCache, ClearRemovesTheStore)
{
    const ScratchDir dir("clear");
    {
        sweep::ResultCache cache(dir.path);
        cache.store(1, "{}", sim::SimResult{});
    }
    EXPECT_TRUE(std::filesystem::exists(
        sweep::ResultCache::binFile(dir.path)));
    EXPECT_TRUE(std::filesystem::exists(
        sweep::ResultCache::indexFile(dir.path)));
    EXPECT_TRUE(sweep::ResultCache::clear(dir.path));
    EXPECT_FALSE(std::filesystem::exists(
        sweep::ResultCache::binFile(dir.path)));
    EXPECT_FALSE(std::filesystem::exists(
        sweep::ResultCache::indexFile(dir.path)));
    EXPECT_TRUE(sweep::ResultCache::clear(dir.path)); // idempotent
}

TEST(ResultCache, CompactDropsCorruptionAndDuplicates)
{
    const ScratchDir dir("compact");

    sim::SimResult stale;
    stale.avgLatency = 1.0;
    sim::SimResult fresh;
    fresh.avgLatency = 2.0;
    fresh.packetsMeasured = 7;
    sim::SimResult other;
    other.avgLatency = 3.0;
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0xbeefULL, "{}", stale);
        writer.store(0x1ULL, "{}", other);
        writer.store(0xbeefULL, "{}", fresh); // supersedes stale
    }
    {
        // A killed writer's torn tail: half a record of garbage.
        std::ofstream out(sweep::ResultCache::binFile(dir.path),
                          std::ios::app | std::ios::binary);
        out << "EBDRtorn-half-record-garbage";
    }

    std::string err;
    const auto stats = sweep::ResultCache::compact(dir.path, &err);
    ASSERT_TRUE(stats) << err;
    EXPECT_EQ(stats->kept, 2u);
    EXPECT_EQ(stats->droppedCorrupted, 1u);
    EXPECT_EQ(stats->droppedDuplicate, 1u);
    EXPECT_GT(stats->reclaimedBytes, 0u);

    // The rewritten store must reload cleanly with the duplicate
    // resolved the same way lookup() resolves it: later record wins.
    sweep::ResultCache cache(dir.path);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.corruptedLines(), 0u);
    const auto hit = cache.lookup(0xbeefULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->avgLatency, 2.0);
    EXPECT_EQ(hit->packetsMeasured, 7u);

    // Compacting an already-compact cache is a no-op; a missing store
    // is success with zero counters.
    const auto again = sweep::ResultCache::compact(dir.path);
    ASSERT_TRUE(again);
    EXPECT_EQ(again->kept, 2u);
    EXPECT_EQ(again->droppedCorrupted, 0u);
    EXPECT_EQ(again->droppedDuplicate, 0u);
    EXPECT_EQ(again->reclaimedBytes, 0u);
    ASSERT_TRUE(sweep::ResultCache::clear(dir.path));
    const auto empty = sweep::ResultCache::compact(dir.path);
    ASSERT_TRUE(empty);
    EXPECT_EQ(empty->kept, 0u);
}

// ------------------------------------------------------------ sim json

TEST(SimJson, ConfigRoundTripsExactly)
{
    sim::SimConfig c;
    c.seed = 0xdeadbeefcafef00dULL; // > 2^53: needs exact u64 path
    c.injectionRate = 0.1; // not exactly representable
    c.switching = sim::SwitchingMode::VirtualCutThrough;
    c.selection = sim::SelectionPolicy::RoundRobin;
    c.atomicVcAllocation = true;
    c.measureCycles = 12345;

    const auto text = sim::toJson(c);
    const auto doc = parseJson(text);
    ASSERT_TRUE(doc);
    std::string err;
    const auto back = sim::configFromJson(*doc, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_EQ(sim::toJson(*back), text);
    EXPECT_EQ(back->seed, c.seed);
    EXPECT_EQ(back->injectionRate, c.injectionRate);
    EXPECT_EQ(back->switching, c.switching);
    EXPECT_EQ(back->selection, c.selection);
}

TEST(SimJson, RejectsUnknownConfigKeys)
{
    const auto doc = parseJson(R"({"seeed": 1})");
    ASSERT_TRUE(doc);
    std::string err;
    EXPECT_FALSE(sim::configFromJson(*doc, &err));
    EXPECT_NE(err.find("seeed"), std::string::npos);
}

TEST(SimJson, ResultRoundTripsExactly)
{
    sim::SimResult r;
    r.avgLatency = 1.0 / 3.0;
    r.acceptedRate = 0.123456789012345678;
    r.p99Latency = 999;
    r.deadlocked = true;
    r.drained = false;
    const auto doc = parseJson(sim::toJson(r));
    ASSERT_TRUE(doc);
    const auto back = sim::resultFromJson(*doc);
    ASSERT_TRUE(back);
    EXPECT_EQ(back->avgLatency, r.avgLatency);
    EXPECT_EQ(back->acceptedRate, r.acceptedRate);
    EXPECT_EQ(back->p99Latency, r.p99Latency);
    EXPECT_TRUE(back->deadlocked);
    EXPECT_FALSE(back->drained);
}

// -------------------------------------------------------------- results

TEST(Results, JsonlSortedByKeyAndParseable)
{
    const auto jobs = specOrDie(kSpecText).expand();
    sweep::RunOptions opts;
    opts.threads = 4;
    const auto report = sweep::runSweep(jobs, opts);

    std::ostringstream out;
    sweep::writeResultsJsonl(jobs, report.outcomes, out);

    std::istringstream in(out.str());
    std::string line;
    std::string prev_key;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc && doc->isObject()) << line;
        const auto *key = doc->find("key");
        ASSERT_TRUE(key && key->isString());
        EXPECT_GE(key->asString(), prev_key);
        prev_key = key->asString();
        EXPECT_TRUE(doc->find("config"));
        EXPECT_TRUE(doc->find("result"));
        ++rows;
    }
    EXPECT_EQ(rows, jobs.size());
}

// ------------------------------------------------------ strict spec

TEST(SweepSpecStrict, ErrorsNameTheOffendingPath)
{
    std::string err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topologies":[{"dims":[4,4]},{"dims":[4,4],"vcs":[2,0]}],
            "routers":["xy"]})",
        &err));
    EXPECT_NE(err.find("topologies[1].vcs"), std::string::npos) << err;
    EXPECT_NE(err.find("integers >= 1"), std::string::npos) << err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4],"k":3},"routers":["xy"]})", &err));
    EXPECT_NE(err.find("topology: unknown key 'k'"), std::string::npos)
        << err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"type":"hypercube","dims":[4,4]},
            "routers":["xy"]})",
        &err));
    EXPECT_NE(err.find("topology.type"), std::string::npos) << err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":[7]})", &err));
    EXPECT_NE(err.find("routers[0]: must be a string"),
              std::string::npos)
        << err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":["xy"],
            "rates":[0.1,-1]})",
        &err));
    EXPECT_NE(err.find("rates[1]: must be a positive number"),
              std::string::npos)
        << err;

    // Nested sim-config errors are re-anchored under 'sim.'.
    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":["xy"],
            "sim":{"sed":1}})",
        &err));
    EXPECT_EQ(err.rfind("sim", 0), 0u) << err;
    EXPECT_NE(err.find("'sed'"), std::string::npos) << err;

    EXPECT_FALSE(sweep::SweepSpec::parse(
        R"({"topology":{"dims":[4,4]},"routers":["xy"],
            "sim":{"faults":{"sed":1}}})",
        &err));
    EXPECT_EQ(err.rfind("sim", 0), 0u) << err;
    EXPECT_NE(err.find("faults.sed"), std::string::npos) << err;
}

// ------------------------------------------------------ hardened sweep

TEST(SweepHardening, InterruptFlagSkipsPendingJobs)
{
    const auto jobs = specOrDie(kSpecText).expand();
    std::atomic<bool> stop{true}; // raised before the sweep starts

    sweep::RunOptions opts;
    opts.threads = 2;
    opts.interruptFlag = &stop;
    const auto report = sweep::runSweep(jobs, opts);

    EXPECT_TRUE(report.interrupted);
    EXPECT_EQ(report.skipped, jobs.size());
    EXPECT_EQ(report.simulated, 0u);
    for (const auto &out : report.outcomes) {
        EXPECT_FALSE(out.ok);
        EXPECT_TRUE(out.skipped);
        EXPECT_EQ(out.error, "interrupted");
    }

    // Skipped jobs produce no result lines.
    std::ostringstream text;
    sweep::writeResultsJsonl(jobs, report.outcomes, text);
    EXPECT_TRUE(text.str().empty());
}

TEST(SweepHardening, CycleBudgetQuarantinesAfterOneRetry)
{
    const ScratchDir dir("quarantine");
    auto jobs = specOrDie(kSpecText).expand();
    jobs.resize(2);

    std::atomic<std::uint64_t> runs{0};
    sweep::ResultCache cold(dir.path);
    sweep::RunOptions opts;
    opts.threads = 2;
    opts.cache = &cold;
    opts.runCounter = &runs;
    opts.jobCycleBudget = 50; // far below warmup+measure
    opts.watchdogRetries = 1;

    const auto first = sweep::runSweep(jobs, opts);
    // Each job runs, trips the budget, retries once (deterministically
    // tripping again) and is quarantined.
    EXPECT_EQ(runs.load(), 2 * jobs.size());
    EXPECT_EQ(first.retried, jobs.size());
    EXPECT_EQ(first.quarantined, jobs.size());
    for (const auto &out : first.outcomes) {
        EXPECT_TRUE(out.ok); // quarantine is a verdict, not a failure
        EXPECT_TRUE(out.quarantined);
        EXPECT_TRUE(out.result.aborted);
        EXPECT_EQ(out.error.rfind("budget: aborted at cycle", 0), 0u)
            << out.error;
    }

    // Quarantined jobs still get result lines (the partial result is
    // the record of what tripped).
    std::ostringstream text;
    sweep::writeResultsJsonl(jobs, first.outcomes, text);
    std::istringstream in(text.str());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc && doc->isObject()) << line;
        EXPECT_TRUE(doc->find("result"));
        ++rows;
    }
    EXPECT_EQ(rows, jobs.size());

    // A fresh cache object reloads the quarantine records from disk
    // and serves them: no job reruns.
    sweep::ResultCache warm(dir.path);
    EXPECT_EQ(warm.entries(), jobs.size());
    EXPECT_EQ(warm.quarantinedEntries(), jobs.size());
    opts.cache = &warm;
    const auto second = sweep::runSweep(jobs, opts);
    EXPECT_EQ(runs.load(), 2 * jobs.size()) << "quarantined job re-ran";
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.quarantined, jobs.size());
    for (const auto &out : second.outcomes) {
        EXPECT_TRUE(out.fromCache);
        EXPECT_TRUE(out.quarantined);
        EXPECT_EQ(out.error.rfind("budget:", 0), 0u) << out.error;
    }

    // The exported line keeps the old reader contract (key + config +
    // result) with the reason as an extra member, and compact() keeps
    // quarantine records verbatim.
    const std::string exportPath = dir.path + "/export.jsonl";
    std::string exportErr;
    ASSERT_TRUE(sweep::ResultCache::exportJsonl(dir.path, exportPath,
                                                nullptr, &exportErr))
        << exportErr;
    std::ifstream cacheIn(exportPath);
    std::size_t quarantineLines = 0;
    while (std::getline(cacheIn, line)) {
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc && doc->isObject()) << line;
        EXPECT_TRUE(doc->find("key"));
        EXPECT_TRUE(doc->find("config"));
        EXPECT_TRUE(doc->find("result"));
        const auto *q = doc->find("quarantine");
        ASSERT_TRUE(q && q->isString()) << line;
        EXPECT_EQ(q->asString().rfind("budget:", 0), 0u);
        ++quarantineLines;
    }
    EXPECT_EQ(quarantineLines, jobs.size());

    const auto stats = sweep::ResultCache::compact(dir.path);
    ASSERT_TRUE(stats);
    EXPECT_EQ(stats->kept, jobs.size());
    sweep::ResultCache compacted(dir.path);
    EXPECT_EQ(compacted.quarantinedEntries(), jobs.size());
}

TEST(SweepHardening, WallClockBudgetAbortsCooperatively)
{
    auto jobs = specOrDie(kSpecText).expand();
    sweep::RunOptions opts;
    opts.jobWallClockBudgetSeconds = 1e-9; // expired before cycle 0
    opts.watchdogRetries = 0;
    const auto out = sweep::runJob(jobs[0], opts);
    ASSERT_TRUE(out.ok);
    EXPECT_TRUE(out.result.aborted);
}

} // namespace
