/**
 * @file
 * Unit tests for the exact adaptiveness measurement — including the
 * paper's headline claims: the Section 4 minimum-channel constructions
 * are *fully* adaptive, deterministic XY scores exactly one path per
 * pair, and partitioning coarseness monotonically trades adaptiveness.
 */

#include <gtest/gtest.h>

#include "cdg/adaptivity.hh"
#include "core/catalog.hh"
#include "core/minimal.hh"

namespace ebda::cdg {
namespace {

TEST(PathCounting, MultinomialValues)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 1});
    const auto a = net.node({0, 0});
    EXPECT_DOUBLE_EQ(countMinimalPaths(net, a, net.node({3, 0})), 1.0);
    EXPECT_DOUBLE_EQ(countMinimalPaths(net, a, net.node({1, 1})), 2.0);
    EXPECT_DOUBLE_EQ(countMinimalPaths(net, a, net.node({2, 2})), 6.0);
    EXPECT_NEAR(countMinimalPaths(net, a, net.node({7, 7})), 3432.0,
                1e-6);
    EXPECT_DOUBLE_EQ(countMinimalPaths(net, a, a), 1.0);
}

TEST(PathCounting, ThreeDimensional)
{
    const auto net = topo::Network::mesh({3, 3, 3}, {1, 1, 1});
    // (1,1,1) offset: 3! = 6 orderings.
    EXPECT_NEAR(countMinimalPaths(net, net.node({0, 0, 0}),
                                  net.node({1, 1, 1})),
                6.0, 1e-9);
}

TEST(Adaptiveness, XyIsDeterministic)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto report =
        measureAdaptiveness(net, core::schemeFig6P1());
    EXPECT_FALSE(report.fullyAdaptive);
    EXPECT_FALSE(report.disconnectedMinimal);
    // Exactly one allowed path per pair.
    const double pairs = 16.0 * 15.0;
    EXPECT_NEAR(report.allowedPaths, pairs, 1e-6);
    EXPECT_GT(report.totalPaths, report.allowedPaths);
}

TEST(Adaptiveness, MinimumChannelSchemesAreFullyAdaptive)
{
    // The core Section 4 claim, machine-checked: both Figure 7 designs
    // realise every minimal path of every pair with 6 channels.
    const auto net = topo::Network::mesh({5, 5}, {2, 2});
    for (const auto &scheme : {core::schemeFig7b(), core::schemeFig7c()}) {
        const auto report = measureAdaptiveness(net, scheme);
        EXPECT_TRUE(report.fullyAdaptive) << scheme.toString();
        EXPECT_DOUBLE_EQ(report.averageFraction, 1.0);
        EXPECT_DOUBLE_EQ(report.minFraction, 1.0);
    }
}

TEST(Adaptiveness, MergedScheme3dFullyAdaptive)
{
    const auto net = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    const auto report = measureAdaptiveness(net, core::mergedScheme(3));
    EXPECT_TRUE(report.fullyAdaptive);
}

TEST(Adaptiveness, RegionScheme2dFullyAdaptive)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const auto report = measureAdaptiveness(net, core::regionScheme(2));
    EXPECT_TRUE(report.fullyAdaptive);
}

TEST(Adaptiveness, PartialOrderOfTurnModels)
{
    // West-First and North-Last (6 turns) beat XY (4 turns); none reach
    // full adaptiveness with 4 channels.
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const auto xy = measureAdaptiveness(net, core::schemeFig6P1());
    const auto wf = measureAdaptiveness(net, core::schemeFig6P3());
    const auto nl = measureAdaptiveness(net, core::schemeNorthLast());
    const auto nf = measureAdaptiveness(net, core::schemeFig6P4());
    EXPECT_GT(wf.averageFraction, xy.averageFraction);
    EXPECT_GT(nl.averageFraction, xy.averageFraction);
    EXPECT_GT(nf.averageFraction, xy.averageFraction);
    EXPECT_FALSE(wf.fullyAdaptive);
    // Every pair must still be minimally routable.
    for (const auto &r : {xy, wf, nl, nf}) {
        EXPECT_FALSE(r.disconnectedMinimal);
        EXPECT_GT(r.minFraction, 0.0);
    }
}

TEST(Adaptiveness, OddEvenComparableToWestFirst)
{
    // Section 6.2: Odd-Even offers "the same level of adaptiveness as
    // those of the west-first routing algorithm".
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto oe = measureAdaptiveness(net, core::schemeOddEven());
    const auto wf = measureAdaptiveness(net, core::schemeFig6P3());
    EXPECT_FALSE(oe.disconnectedMinimal);
    EXPECT_NEAR(oe.averageFraction, wf.averageFraction, 0.12);
}

TEST(Adaptiveness, OddEvenIsMoreEvenThanWestFirst)
{
    // Chiu's motivation, quantified: West-First is fully deterministic
    // for westbound pairs and fully adaptive eastbound — a huge spread;
    // Odd-Even distributes its (comparable) adaptiveness more evenly.
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto oe = measureAdaptiveness(net, core::schemeOddEven());
    const auto wf = measureAdaptiveness(net, core::schemeFig6P3());
    EXPECT_LT(oe.fractionStddev, wf.fractionStddev);
}

TEST(Adaptiveness, VcsInsideOnePartitionAddNothing)
{
    // Figure 6(e): P5's extra Y VCs leave minimal-path adaptiveness
    // exactly at the West-First level.
    const auto net = topo::Network::mesh({5, 5}, {1, 2});
    const auto p3 = measureAdaptiveness(net, core::schemeFig6P3());
    const auto p5 = measureAdaptiveness(net, core::schemeFig6P5());
    EXPECT_DOUBLE_EQ(p3.averageFraction, p5.averageFraction);
}

TEST(Adaptiveness, MoreVcsInOnePartitionStillNotFullyAdaptive)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const auto report = measureAdaptiveness(net, core::schemeFig6P5());
    EXPECT_FALSE(report.fullyAdaptive);
}

TEST(Adaptiveness, RejectsTorus)
{
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    EXPECT_DEATH(measureAdaptiveness(net, core::schemeFig6P1()),
                 "mesh network");
}

} // namespace
} // namespace ebda::cdg
