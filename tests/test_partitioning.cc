/**
 * @file
 * Unit tests for Algorithm 1 (the partitioning procedure), the merge
 * step, and the exceptional no-VC case — including the Section 5
 * walkthrough with VCs (3, 2, 3) that must reproduce Figure 9(c).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/catalog.hh"
#include "core/partitioning.hh"

namespace ebda::core {
namespace {

ChannelClass
cc(std::uint8_t d, Sign s, std::uint8_t v = 0)
{
    return makeClass(d, s, v);
}

TEST(Algorithm1, TwoDimensionalSingleVc)
{
    // Sets X = {X+ X-}, Y = {Y+ Y-} -> {X+ X- Y+} then {Y-}.
    const auto scheme = partitionSets(makeSets({1, 1}));
    ASSERT_EQ(scheme.size(), 2u);
    EXPECT_EQ(scheme.toString(false), "{X+ X- Y+} -> {Y-}");
    EXPECT_TRUE(scheme.validate().ok);
}

TEST(Algorithm1, Section5Walkthrough323)
{
    // The paper's example: Z leads (Set1), X second, Y third; Y's
    // channels pre-arranged so Y2+ follows Y1+ (the "to cover the
    // neighbouring regions" choice). Result must be Figure 9(c):
    //   {Z1* X1+ Y1+}; {Z2* X1- Y2+}; {X2* Z3+ Y1-}; {X3* Z3- Y2-}.
    SetArrangement sets;
    sets.push_back(makeSets({0, 0, 3})[0]); // D_Z
    sets.push_back(makeSets({3})[0]);       // D_X
    DimensionSet y;
    y.dim = 1;
    y.channels = {cc(1, Sign::Pos, 0), cc(1, Sign::Pos, 1),
                  cc(1, Sign::Neg, 0), cc(1, Sign::Neg, 1)};
    sets.push_back(y);

    const auto scheme = partitionSets(sets);
    ASSERT_EQ(scheme.size(), 4u);
    EXPECT_EQ(scheme.toString(),
              "{Z1+ Z1- X1+ Y1+} -> {Z2+ Z2- X1- Y2+} -> "
              "{X2+ X2- Z3+ Y1-} -> {X3+ X3- Z3- Y2-}");

    // Structurally identical to the Figure 9(c) catalogue scheme up to
    // member order inside partitions.
    const auto fig9c = schemeFig9c();
    ASSERT_EQ(scheme.size(), fig9c.size());
    for (std::size_t i = 0; i < scheme.size(); ++i) {
        for (const auto &cls : fig9c[i].classes())
            EXPECT_TRUE(scheme[i].contains(cls))
                << "partition " << i << " missing " << cls.algebraic();
    }
}

TEST(Algorithm1, ReorderingMidProcedure)
{
    // VCs (1, 3): Y leads with 3 pairs; after two partitions Y still has
    // a pair but X is empty; the trailing {Y3+ Y3-} merges into the
    // first partition (its region {Y+-} is a subset of {X+, Y+-}).
    const auto scheme = partitionSets(makeSets({1, 3}));
    ASSERT_EQ(scheme.size(), 2u);
    EXPECT_TRUE(scheme.validate().ok);
    // First partition absorbed the third Y pair.
    EXPECT_TRUE(scheme[0].contains(cc(1, Sign::Pos, 2)));
    EXPECT_TRUE(scheme[0].contains(cc(1, Sign::Neg, 2)));
    EXPECT_EQ(scheme[0].completePairCount(), 1u);
}

TEST(Algorithm1, MinimumFullyAdaptive2d)
{
    // VCs (1, 2) reproduce the Figure 7(b) shape: {Y1* X+} -> {Y2* X-}.
    const auto scheme = partitionSets(makeSets({1, 2}));
    ASSERT_EQ(scheme.size(), 2u);
    EXPECT_EQ(scheme.numClasses(), 6u);
    EXPECT_TRUE(scheme[0].contains(cc(1, Sign::Pos, 0)));
    EXPECT_TRUE(scheme[0].contains(cc(1, Sign::Neg, 0)));
    EXPECT_TRUE(scheme[0].contains(cc(0, Sign::Pos, 0)));
    EXPECT_TRUE(scheme[1].contains(cc(0, Sign::Neg, 0)));
}

TEST(Algorithm1, NoReorderOption)
{
    PartitioningOptions opts;
    opts.reorderSets = false;
    // X has fewer pairs than Y but stays the leading set.
    const auto scheme = partitionSets(makeSets({1, 2}), opts);
    EXPECT_TRUE(scheme.validate().ok);
    // First partition holds the X pair.
    EXPECT_TRUE(scheme[0].contains(cc(0, Sign::Pos, 0)));
    EXPECT_TRUE(scheme[0].contains(cc(0, Sign::Neg, 0)));
}

TEST(Algorithm1, ThreeDimensionalNoVc)
{
    // (1,1,1): first partition takes the X pair plus Y+ and Z+; the
    // remainder {Y- Z-} forms the second partition.
    const auto scheme = partitionSets(makeSets({1, 1, 1}));
    ASSERT_EQ(scheme.size(), 2u);
    EXPECT_EQ(scheme.numClasses(), 6u);
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(scheme[0].completePairCount(), 1u);
    EXPECT_EQ(scheme[1].completePairCount(), 0u);
}

TEST(Algorithm1, SingleDimension)
{
    const auto scheme = partitionSets(makeSets({2}));
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(scheme.numClasses(), 4u);
    // All X channels end up in one partition after merging (regions are
    // identical).
    EXPECT_EQ(scheme.size(), 1u);
}

TEST(MergeMatching, PreservesTheorem1)
{
    // Merging must never create a second complete pair: region {X+} fits
    // inside {X+- Y+}, but a second X pair would still count once; a Y-
    // region does NOT fit and must stay separate.
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos, 0), cc(0, Sign::Neg, 0),
                     cc(1, Sign::Pos, 0)}));
    s.add(Partition({cc(1, Sign::Neg, 0)}));
    const auto merged = mergeMatchingPartitions(s);
    EXPECT_EQ(merged.size(), 2u); // {Y-} region not a subset, no merge
}

TEST(MergeMatching, MergesSubsetRegion)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos, 0), cc(0, Sign::Neg, 0),
                     cc(1, Sign::Pos, 0)}));
    s.add(Partition({cc(0, Sign::Pos, 1)}));
    const auto merged = mergeMatchingPartitions(s);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].size(), 4u);
    EXPECT_TRUE(merged.validate().ok);
}

TEST(ExceptionalCase, TwoDimensional)
{
    // 2^2 = 4 schemes, each two pair-free partitions — the last column
    // of Table 1.
    const auto schemes = exceptionalSchemes(2);
    ASSERT_EQ(schemes.size(), 4u);
    std::set<std::string> keys;
    for (const auto &s : schemes) {
        ASSERT_EQ(s.size(), 2u);
        EXPECT_EQ(s[0].completePairCount(), 0u);
        EXPECT_EQ(s[1].completePairCount(), 0u);
        EXPECT_TRUE(s.validate().ok);
        keys.insert(s.canonicalKey());
    }
    EXPECT_EQ(keys.size(), 4u);
    // The Table 1 entry {X+ Y+} -> {X- Y-} is among them.
    bool found = false;
    for (const auto &s : schemes)
        if (s.toString(false) == "{X+ Y+} -> {X- Y-}")
            found = true;
    EXPECT_TRUE(found);
}

TEST(ExceptionalCase, ThreeDimensionalCount)
{
    // "The total number of combinations is 2^n": eight options in 3D,
    // the paper lists four plus their order-switched complements.
    const auto schemes = exceptionalSchemes(3);
    EXPECT_EQ(schemes.size(), 8u);
    for (const auto &s : schemes) {
        EXPECT_EQ(s.numClasses(), 6u);
        EXPECT_TRUE(s.validate().ok);
    }
}

} // namespace
} // namespace ebda::core
