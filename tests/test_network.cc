/**
 * @file
 * Unit tests for the topology substrate: meshes, tori, partially
 * connected 3D meshes, coordinates, channels and class matching.
 */

#include <gtest/gtest.h>

#include <set>

#include "topo/network.hh"

namespace ebda::topo {
namespace {

using core::makeClass;
using core::makeParityClass;
using core::Parity;
using core::Sign;

TEST(Mesh, NodeAndLinkCounts)
{
    const auto net = Network::mesh({4, 4}, {1, 1});
    EXPECT_EQ(net.numNodes(), 16u);
    // 2 * (3*4) unidirectional links per dimension.
    EXPECT_EQ(net.numLinks(), 48u);
    EXPECT_EQ(net.numChannels(), 48u);
    EXPECT_FALSE(net.isTorus());
    EXPECT_EQ(net.numDims(), 2);
}

TEST(Mesh, VcsMultiplyChannels)
{
    const auto net = Network::mesh({4, 4}, {2, 3});
    // 24 X links * 2 VCs + 24 Y links * 3 VCs.
    EXPECT_EQ(net.numChannels(), 24u * 2 + 24u * 3);
}

TEST(Mesh, CoordinateRoundTrip)
{
    const auto net = Network::mesh({3, 4, 5}, {1, 1, 1});
    for (NodeId n = 0; n < net.numNodes(); ++n)
        EXPECT_EQ(net.node(net.coord(n)), n);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 0), 2);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 1), 3);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 2), 4);
}

TEST(Mesh, LinksConnectNeighbors)
{
    const auto net = Network::mesh({3, 3}, {1, 1});
    const NodeId center = net.node({1, 1});
    EXPECT_EQ(net.outLinks(center).size(), 4u);
    EXPECT_EQ(net.inLinks(center).size(), 4u);
    const NodeId corner = net.node({0, 0});
    EXPECT_EQ(net.outLinks(corner).size(), 2u);

    const auto east = net.linkFrom(center, 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    EXPECT_EQ(net.link(*east).dst, net.node({2, 1}));
    EXPECT_EQ(net.link(*east).classSign, Sign::Pos);
    EXPECT_FALSE(net.link(*east).wrap);
    // No eastward link at the east edge of a mesh.
    EXPECT_FALSE(net.linkFrom(net.node({2, 1}), 0, Sign::Pos).has_value());
}

TEST(Mesh, DistanceAndOffsets)
{
    const auto net = Network::mesh({5, 5}, {1, 1});
    const NodeId a = net.node({0, 0});
    const NodeId b = net.node({3, 4});
    EXPECT_EQ(net.distance(a, b), 7);
    EXPECT_EQ(net.minimalOffset(a, b, 0), 3);
    EXPECT_EQ(net.minimalOffset(b, a, 0), -3);
}

TEST(Mesh, ChannelLinkVcRoundTrip)
{
    const auto net = Network::mesh({3, 3}, {2, 2});
    for (ChannelId c = 0; c < net.numChannels(); ++c) {
        const LinkId l = net.linkOf(c);
        const int v = net.vcOf(c);
        EXPECT_EQ(net.channel(l, v), c);
    }
}

TEST(Mesh, OutChannelsCoverAllVcs)
{
    const auto net = Network::mesh({3, 3}, {2, 1});
    const NodeId center = net.node({1, 1});
    // 2 X links * 2 VCs + 2 Y links * 1 VC.
    EXPECT_EQ(net.outChannels(center).size(), 6u);
}

TEST(Mesh, ChannelInClassMatching)
{
    const auto net = Network::mesh({4, 4}, {2, 2});
    const NodeId n = net.node({1, 2});
    const auto east = net.linkFrom(n, 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    const ChannelId c0 = net.channel(*east, 0);
    const ChannelId c1 = net.channel(*east, 1);

    EXPECT_TRUE(net.channelInClass(c0, makeClass(0, Sign::Pos, 0)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(0, Sign::Pos, 1)));
    EXPECT_TRUE(net.channelInClass(c1, makeClass(0, Sign::Pos, 1)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(0, Sign::Neg, 0)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(1, Sign::Pos, 0)));
}

TEST(Mesh, ParityClassMatching)
{
    const auto net = Network::mesh({4, 4}, {1, 1});
    // Y+ link leaving (1, 2): column (X coordinate) 1 is odd.
    const auto link = net.linkFrom(net.node({1, 2}), 1, Sign::Pos);
    ASSERT_TRUE(link.has_value());
    const ChannelId c = net.channel(*link, 0);
    EXPECT_TRUE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 0, Parity::Odd)));
    EXPECT_FALSE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 0, Parity::Even)));
    // Row-parity axis: source row (Y) is 2, even.
    EXPECT_TRUE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 1, Parity::Even)));
}

TEST(Torus, WrapLinksExistAndClassify)
{
    const auto net = Network::torus({4, 4}, {1, 1});
    EXPECT_TRUE(net.isTorus());
    // Mesh links + 2 wrap links per row/column per dimension.
    EXPECT_EQ(net.numLinks(), 48u + 16u);

    // Eastward wrap from (3, y) to (0, y): travel +, class -.
    const auto wrap = net.linkFrom(net.node({3, 1}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_TRUE(net.link(*wrap).wrap);
    EXPECT_EQ(net.link(*wrap).dst, net.node({0, 1}));
    EXPECT_EQ(net.link(*wrap).travelSign, Sign::Pos);
    EXPECT_EQ(net.link(*wrap).classSign, Sign::Neg);
    // A wrap-link channel therefore matches the negative class.
    EXPECT_TRUE(net.channelInClass(net.channel(*wrap, 0),
                                   makeClass(0, Sign::Neg, 0)));
}

TEST(Torus, SameAsTravelClassification)
{
    const auto net = Network::torus({4, 4}, {2, 2},
                                    WrapClassification::SameAsTravel);
    const auto wrap = net.linkFrom(net.node({3, 1}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_EQ(net.link(*wrap).classSign, Sign::Pos);
}

TEST(Torus, MinimalOffsetsWrapAround)
{
    const auto net = Network::torus({8, 8}, {1, 1});
    const NodeId a = net.node({6, 0});
    const NodeId b = net.node({1, 0});
    // Short way east across the wrap: +3, not -5.
    EXPECT_EQ(net.minimalOffset(a, b, 0), 3);
    EXPECT_EQ(net.distance(a, b), 3);
    // Exact half: ties toward positive.
    EXPECT_EQ(net.minimalOffset(net.node({0, 0}), net.node({4, 0}), 0), 4);
}

TEST(Torus, SmallRadixHasNoWraps)
{
    // Radix-2 rings would duplicate the mesh links; they are skipped.
    const auto net = Network::torus({2, 4}, {1, 1});
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        if (net.link(l).wrap) {
            EXPECT_NE(net.link(l).dim, 0);
        }
    }
}

TEST(PartialMesh3d, VerticalLinksOnlyAtElevators)
{
    const auto net =
        Network::partialMesh3d({3, 3, 3}, {1, 1, 1}, {{0, 0}, {2, 2}});
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const Link &lk = net.link(l);
        if (lk.dim != 2)
            continue;
        const Coord c = net.coord(lk.src);
        const bool at_elevator = (c[0] == 0 && c[1] == 0)
            || (c[0] == 2 && c[1] == 2);
        EXPECT_TRUE(at_elevator)
            << "vertical link at non-elevator (" << c[0] << "," << c[1]
            << ")";
    }
    // 2 elevators * 2 vertical hops * 2 directions.
    std::size_t vertical = 0;
    for (LinkId l = 0; l < net.numLinks(); ++l)
        if (net.link(l).dim == 2)
            ++vertical;
    EXPECT_EQ(vertical, 8u);
}

TEST(PartialMesh3d, LayersKeepFullMesh)
{
    const auto net =
        Network::partialMesh3d({3, 3, 2}, {1, 1, 1}, {{1, 1}});
    // Each layer keeps the full 2D mesh: 2 * (2*3) * 2 dims per layer.
    std::size_t horizontal = 0;
    for (LinkId l = 0; l < net.numLinks(); ++l)
        if (net.link(l).dim != 2)
            ++horizontal;
    EXPECT_EQ(horizontal, 2u * 24u);
}

TEST(Network, ChannelNames)
{
    const auto net = Network::mesh({3, 3}, {2, 1});
    const auto east = net.linkFrom(net.node({0, 0}), 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    EXPECT_EQ(net.channelName(net.channel(*east, 1)),
              "(0,0)->(1,0) X+ vc1");

    const auto torus = Network::torus({3, 3}, {1, 1});
    const auto wrap = torus.linkFrom(torus.node({2, 0}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_EQ(torus.channelName(torus.channel(*wrap, 0)),
              "(2,0)->(0,0) X- vc0 (wrap)");
}

TEST(Network, InvalidArgumentsPanic)
{
    const auto net = Network::mesh({3, 3}, {1, 1});
    EXPECT_DEATH(net.node({5, 0}), "out of range");
}

/** Expect an std::invalid_argument whose message contains `needle`. */
template <typename Fn>
void
expectRejected(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected std::invalid_argument (" << needle << ")";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(Network, FactoriesRejectDegenerateParameters)
{
    expectRejected([] { Network::mesh({3}, {1, 1}); }, "size mismatch");
    expectRejected([] { Network::mesh({}, {}); },
                   "mesh.dims: must not be empty");
    expectRejected([] { Network::mesh({3, 1}, {1, 1}); },
                   "mesh.dims[1]: radix must be >= 2");
    expectRejected([] { Network::mesh({3, 3}, {1, 0}); },
                   "mesh.vcs[1]: must be >= 1");
    expectRejected([] { Network::torus({0}, {1}); }, "torus.dims[0]");
    expectRejected(
        [] { Network::partialMesh3d({3, 3, 3}, {1, 1, 1}, {}); },
        "partialMesh3d.elevators");
    expectRejected(
        [] { Network::partialMesh3d({3, 3}, {1, 1}, {{0, 0}}); },
        "partialMesh3d.dims: need exactly 3 dimensions");
    expectRejected(
        [] { Network::partialMesh3d({3, 3, 3}, {1, 1, 1}, {{3, 0}}); },
        "partialMesh3d.elevators[0]");
    expectRejected([] { Network::dragonfly(1, 1, 1); }, "dragonfly.a");
    expectRejected([] { Network::dragonfly(4, 0, 2); }, "dragonfly.p");
    expectRejected([] { Network::dragonfly(4, 2, 2, 0); },
                   "dragonfly.localVcs");
    expectRejected([] { Network::fullMesh(1); }, "fullMesh.n");
    expectRejected([] { Network::fullMesh(4, 0); }, "fullMesh.vcs");
}

TEST(Dragonfly, ShapeAndGlobalLinkPairing)
{
    // a=4, h=2: 9 groups of 4 routers.
    const auto net = Network::dragonfly(4, 2, 2);
    ASSERT_TRUE(net.dragonflyShape().has_value());
    EXPECT_EQ(net.dragonflyShape()->groups, 9);
    EXPECT_EQ(net.numNodes(), 36u);
    // Per group: 4*3 local + 4*2 global unidirectional links.
    EXPECT_EQ(net.numLinks(), 9u * (12 + 8));
    // Default VCs: 2 local, 1 global.
    EXPECT_EQ(net.numChannels(), 9u * (12 * 2 + 8 * 1));
    EXPECT_FALSE(net.hasGrid());
    EXPECT_EQ(net.kind(), TopologyKind::Dragonfly);

    std::size_t global_links = 0;
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const Link &lk = net.link(l);
        if (lk.dim == 1) {
            ++global_links;
            // Endpoints are in different groups, and the reverse link
            // exists (global channels are bidirectional pairs).
            EXPECT_NE(lk.src / 4, lk.dst / 4);
            EXPECT_TRUE(net.linkBetween(lk.dst, lk.src).has_value());
        } else {
            EXPECT_EQ(lk.src / 4, lk.dst / 4);
        }
    }
    EXPECT_EQ(global_links, 9u * 8);

    // Exactly one global link from each group to every other group.
    for (int g = 0; g < 9; ++g) {
        std::set<int> reached;
        for (LinkId l = 0; l < net.numLinks(); ++l) {
            const Link &lk = net.link(l);
            if (lk.dim == 1 && static_cast<int>(lk.src) / 4 == g)
                EXPECT_TRUE(reached.insert(lk.dst / 4).second)
                    << "duplicate global link " << g << "->" << lk.dst / 4;
        }
        EXPECT_EQ(reached.size(), 8u);
        EXPECT_EQ(reached.count(g), 0u);
    }

    // Diameter via BFS distances: at most l-g-l = 3 hops.
    for (NodeId u = 0; u < net.numNodes(); ++u)
        for (NodeId v = 0; v < net.numNodes(); ++v) {
            const int d = net.distance(u, v);
            ASSERT_GE(d, 0);
            EXPECT_LE(d, 3);
        }
}

TEST(FullMesh, ShapeAndDistances)
{
    const auto net = Network::fullMesh(8, 1);
    EXPECT_EQ(net.numNodes(), 8u);
    EXPECT_EQ(net.numLinks(), 8u * 7);
    EXPECT_EQ(net.numChannels(), 8u * 7);
    EXPECT_EQ(net.kind(), TopologyKind::FullMesh);
    EXPECT_FALSE(net.hasGrid());
    for (NodeId u = 0; u < 8; ++u)
        for (NodeId v = 0; v < 8; ++v)
            EXPECT_EQ(net.distance(u, v), u == v ? 0 : 1);
}

TEST(FromGraph, UnclassifiedLinksAndNames)
{
    // A -> B -> C plus a 2-VC back edge C -> A.
    std::vector<Link> links = {
        Link{0, 1, kUnclassifiedDim, Sign::Pos, Sign::Pos, false, 1},
        Link{1, 2, kUnclassifiedDim, Sign::Pos, Sign::Pos, false, 1},
        Link{2, 0, kUnclassifiedDim, Sign::Pos, Sign::Pos, false, 2},
    };
    const auto net =
        Network::fromGraph(3, links, {"A", "B", "C"});
    EXPECT_EQ(net.kind(), TopologyKind::Custom);
    EXPECT_EQ(net.numChannels(), 4u);
    EXPECT_EQ(net.findNode("B"), NodeId{1});
    EXPECT_FALSE(net.findNode("Z").has_value());
    EXPECT_EQ(net.distance(0, 2), 2);
    EXPECT_EQ(net.distance(2, 1), 2);
    // Unclassified channels match no EbDa class and name plainly.
    EXPECT_FALSE(
        net.channelInClass(0, makeClass(0, Sign::Pos, 0)));
    const auto back = net.linkBetween(2, 0);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(net.channelName(net.channel(*back, 1)), "C->A vc1");

    expectRejected(
        [] {
            Network::fromGraph(
                2, {Link{0, 0, kUnclassifiedDim, Sign::Pos, Sign::Pos,
                         false, 1}});
        },
        "self-link");
    expectRejected(
        [] {
            Network::fromGraph(
                2, {Link{0, 3, kUnclassifiedDim, Sign::Pos, Sign::Pos,
                         false, 1}});
        },
        "fromGraph.links[0].dst");
    expectRejected(
        [] { Network::fromGraph(2, {}, {"A", "A"}); },
        "duplicate node name");
}

TEST(FromGraph, DisconnectedDistanceIsMinusOne)
{
    const auto net = Network::fromGraph(
        3, {Link{0, 1, kUnclassifiedDim, Sign::Pos, Sign::Pos, false, 1}});
    EXPECT_EQ(net.distance(0, 1), 1);
    EXPECT_EQ(net.distance(1, 0), -1);
    EXPECT_EQ(net.distance(0, 2), -1);
}

} // namespace
} // namespace ebda::topo
