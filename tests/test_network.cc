/**
 * @file
 * Unit tests for the topology substrate: meshes, tori, partially
 * connected 3D meshes, coordinates, channels and class matching.
 */

#include <gtest/gtest.h>

#include <set>

#include "topo/network.hh"

namespace ebda::topo {
namespace {

using core::makeClass;
using core::makeParityClass;
using core::Parity;
using core::Sign;

TEST(Mesh, NodeAndLinkCounts)
{
    const auto net = Network::mesh({4, 4}, {1, 1});
    EXPECT_EQ(net.numNodes(), 16u);
    // 2 * (3*4) unidirectional links per dimension.
    EXPECT_EQ(net.numLinks(), 48u);
    EXPECT_EQ(net.numChannels(), 48u);
    EXPECT_FALSE(net.isTorus());
    EXPECT_EQ(net.numDims(), 2);
}

TEST(Mesh, VcsMultiplyChannels)
{
    const auto net = Network::mesh({4, 4}, {2, 3});
    // 24 X links * 2 VCs + 24 Y links * 3 VCs.
    EXPECT_EQ(net.numChannels(), 24u * 2 + 24u * 3);
}

TEST(Mesh, CoordinateRoundTrip)
{
    const auto net = Network::mesh({3, 4, 5}, {1, 1, 1});
    for (NodeId n = 0; n < net.numNodes(); ++n)
        EXPECT_EQ(net.node(net.coord(n)), n);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 0), 2);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 1), 3);
    EXPECT_EQ(net.coordAlong(net.node({2, 3, 4}), 2), 4);
}

TEST(Mesh, LinksConnectNeighbors)
{
    const auto net = Network::mesh({3, 3}, {1, 1});
    const NodeId center = net.node({1, 1});
    EXPECT_EQ(net.outLinks(center).size(), 4u);
    EXPECT_EQ(net.inLinks(center).size(), 4u);
    const NodeId corner = net.node({0, 0});
    EXPECT_EQ(net.outLinks(corner).size(), 2u);

    const auto east = net.linkFrom(center, 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    EXPECT_EQ(net.link(*east).dst, net.node({2, 1}));
    EXPECT_EQ(net.link(*east).classSign, Sign::Pos);
    EXPECT_FALSE(net.link(*east).wrap);
    // No eastward link at the east edge of a mesh.
    EXPECT_FALSE(net.linkFrom(net.node({2, 1}), 0, Sign::Pos).has_value());
}

TEST(Mesh, DistanceAndOffsets)
{
    const auto net = Network::mesh({5, 5}, {1, 1});
    const NodeId a = net.node({0, 0});
    const NodeId b = net.node({3, 4});
    EXPECT_EQ(net.distance(a, b), 7);
    EXPECT_EQ(net.minimalOffset(a, b, 0), 3);
    EXPECT_EQ(net.minimalOffset(b, a, 0), -3);
}

TEST(Mesh, ChannelLinkVcRoundTrip)
{
    const auto net = Network::mesh({3, 3}, {2, 2});
    for (ChannelId c = 0; c < net.numChannels(); ++c) {
        const LinkId l = net.linkOf(c);
        const int v = net.vcOf(c);
        EXPECT_EQ(net.channel(l, v), c);
    }
}

TEST(Mesh, OutChannelsCoverAllVcs)
{
    const auto net = Network::mesh({3, 3}, {2, 1});
    const NodeId center = net.node({1, 1});
    // 2 X links * 2 VCs + 2 Y links * 1 VC.
    EXPECT_EQ(net.outChannels(center).size(), 6u);
}

TEST(Mesh, ChannelInClassMatching)
{
    const auto net = Network::mesh({4, 4}, {2, 2});
    const NodeId n = net.node({1, 2});
    const auto east = net.linkFrom(n, 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    const ChannelId c0 = net.channel(*east, 0);
    const ChannelId c1 = net.channel(*east, 1);

    EXPECT_TRUE(net.channelInClass(c0, makeClass(0, Sign::Pos, 0)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(0, Sign::Pos, 1)));
    EXPECT_TRUE(net.channelInClass(c1, makeClass(0, Sign::Pos, 1)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(0, Sign::Neg, 0)));
    EXPECT_FALSE(net.channelInClass(c0, makeClass(1, Sign::Pos, 0)));
}

TEST(Mesh, ParityClassMatching)
{
    const auto net = Network::mesh({4, 4}, {1, 1});
    // Y+ link leaving (1, 2): column (X coordinate) 1 is odd.
    const auto link = net.linkFrom(net.node({1, 2}), 1, Sign::Pos);
    ASSERT_TRUE(link.has_value());
    const ChannelId c = net.channel(*link, 0);
    EXPECT_TRUE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 0, Parity::Odd)));
    EXPECT_FALSE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 0, Parity::Even)));
    // Row-parity axis: source row (Y) is 2, even.
    EXPECT_TRUE(net.channelInClass(
        c, makeParityClass(1, Sign::Pos, 1, Parity::Even)));
}

TEST(Torus, WrapLinksExistAndClassify)
{
    const auto net = Network::torus({4, 4}, {1, 1});
    EXPECT_TRUE(net.isTorus());
    // Mesh links + 2 wrap links per row/column per dimension.
    EXPECT_EQ(net.numLinks(), 48u + 16u);

    // Eastward wrap from (3, y) to (0, y): travel +, class -.
    const auto wrap = net.linkFrom(net.node({3, 1}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_TRUE(net.link(*wrap).wrap);
    EXPECT_EQ(net.link(*wrap).dst, net.node({0, 1}));
    EXPECT_EQ(net.link(*wrap).travelSign, Sign::Pos);
    EXPECT_EQ(net.link(*wrap).classSign, Sign::Neg);
    // A wrap-link channel therefore matches the negative class.
    EXPECT_TRUE(net.channelInClass(net.channel(*wrap, 0),
                                   makeClass(0, Sign::Neg, 0)));
}

TEST(Torus, SameAsTravelClassification)
{
    const auto net = Network::torus({4, 4}, {2, 2},
                                    WrapClassification::SameAsTravel);
    const auto wrap = net.linkFrom(net.node({3, 1}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_EQ(net.link(*wrap).classSign, Sign::Pos);
}

TEST(Torus, MinimalOffsetsWrapAround)
{
    const auto net = Network::torus({8, 8}, {1, 1});
    const NodeId a = net.node({6, 0});
    const NodeId b = net.node({1, 0});
    // Short way east across the wrap: +3, not -5.
    EXPECT_EQ(net.minimalOffset(a, b, 0), 3);
    EXPECT_EQ(net.distance(a, b), 3);
    // Exact half: ties toward positive.
    EXPECT_EQ(net.minimalOffset(net.node({0, 0}), net.node({4, 0}), 0), 4);
}

TEST(Torus, SmallRadixHasNoWraps)
{
    // Radix-2 rings would duplicate the mesh links; they are skipped.
    const auto net = Network::torus({2, 4}, {1, 1});
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        if (net.link(l).wrap) {
            EXPECT_NE(net.link(l).dim, 0);
        }
    }
}

TEST(PartialMesh3d, VerticalLinksOnlyAtElevators)
{
    const auto net =
        Network::partialMesh3d({3, 3, 3}, {1, 1, 1}, {{0, 0}, {2, 2}});
    for (LinkId l = 0; l < net.numLinks(); ++l) {
        const Link &lk = net.link(l);
        if (lk.dim != 2)
            continue;
        const Coord c = net.coord(lk.src);
        const bool at_elevator = (c[0] == 0 && c[1] == 0)
            || (c[0] == 2 && c[1] == 2);
        EXPECT_TRUE(at_elevator)
            << "vertical link at non-elevator (" << c[0] << "," << c[1]
            << ")";
    }
    // 2 elevators * 2 vertical hops * 2 directions.
    std::size_t vertical = 0;
    for (LinkId l = 0; l < net.numLinks(); ++l)
        if (net.link(l).dim == 2)
            ++vertical;
    EXPECT_EQ(vertical, 8u);
}

TEST(PartialMesh3d, LayersKeepFullMesh)
{
    const auto net =
        Network::partialMesh3d({3, 3, 2}, {1, 1, 1}, {{1, 1}});
    // Each layer keeps the full 2D mesh: 2 * (2*3) * 2 dims per layer.
    std::size_t horizontal = 0;
    for (LinkId l = 0; l < net.numLinks(); ++l)
        if (net.link(l).dim != 2)
            ++horizontal;
    EXPECT_EQ(horizontal, 2u * 24u);
}

TEST(Network, ChannelNames)
{
    const auto net = Network::mesh({3, 3}, {2, 1});
    const auto east = net.linkFrom(net.node({0, 0}), 0, Sign::Pos);
    ASSERT_TRUE(east.has_value());
    EXPECT_EQ(net.channelName(net.channel(*east, 1)),
              "(0,0)->(1,0) X+ vc1");

    const auto torus = Network::torus({3, 3}, {1, 1});
    const auto wrap = torus.linkFrom(torus.node({2, 0}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_EQ(torus.channelName(torus.channel(*wrap, 0)),
              "(2,0)->(0,0) X- vc0 (wrap)");
}

TEST(Network, InvalidArgumentsPanic)
{
    const auto net = Network::mesh({3, 3}, {1, 1});
    EXPECT_DEATH(net.node({5, 0}), "out of range");
    EXPECT_DEATH(Network::mesh({3}, {1, 1}), "size mismatch");
    EXPECT_DEATH(Network::partialMesh3d({3, 3, 3}, {1, 1, 1}, {}),
                 "elevator");
}

} // namespace
} // namespace ebda::topo
