/**
 * @file
 * Unit tests for Partition / PartitionScheme and Theorem-1 validation.
 */

#include <gtest/gtest.h>

#include "core/partition.hh"

namespace ebda::core {
namespace {

ChannelClass
cc(std::uint8_t d, Sign s, std::uint8_t v = 0)
{
    return makeClass(d, s, v);
}

TEST(Partition, PairCountingBasic)
{
    // {X+ X- Y+}: one complete pair (X).
    Partition p({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Pos)});
    EXPECT_EQ(p.completePairCount(), 1u);
    EXPECT_TRUE(p.satisfiesTheorem1());
    EXPECT_EQ(p.pairedDimensions(), std::vector<std::uint8_t>{0});
}

TEST(Partition, TwoPairsViolateTheorem1)
{
    // {X+ X- Y+ Y-}: two complete pairs.
    Partition p({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Pos),
                 cc(1, Sign::Neg)});
    EXPECT_EQ(p.completePairCount(), 2u);
    EXPECT_FALSE(p.satisfiesTheorem1());
}

TEST(Partition, PairAcrossDifferentVcs)
{
    // Note to Theorem 1: {X1+ X2- Y1+ Y2-} covers two pairs even though
    // the VC numbers differ within each dimension.
    Partition p({cc(0, Sign::Pos, 0), cc(0, Sign::Neg, 1),
                 cc(1, Sign::Pos, 0), cc(1, Sign::Neg, 1)});
    EXPECT_EQ(p.completePairCount(), 2u);
    EXPECT_FALSE(p.satisfiesTheorem1());
}

TEST(Partition, MultipleVcPairsInOneDimensionCountOnce)
{
    // Note to Theorem 1: {X1+ Y1+ Y1- Y2+ Y2-} is cycle-free: a single
    // paired dimension regardless of how many VC pairs it holds.
    Partition p({cc(0, Sign::Pos), cc(1, Sign::Pos, 0), cc(1, Sign::Neg, 0),
                 cc(1, Sign::Pos, 1), cc(1, Sign::Neg, 1)});
    EXPECT_EQ(p.completePairCount(), 1u);
    EXPECT_TRUE(p.satisfiesTheorem1());
}

TEST(Partition, SingleDirectionsNoPair)
{
    Partition p({cc(0, Sign::Pos), cc(1, Sign::Pos), cc(2, Sign::Neg),
                 cc(3, Sign::Neg)});
    EXPECT_EQ(p.completePairCount(), 0u);
    EXPECT_TRUE(p.satisfiesTheorem1());
}

TEST(Partition, ParityIgnoredInPairCount)
{
    // Hamiltonian PA = {Xe+ Xo- Y+}: conservative counting treats the
    // parity-split X classes as one pair — still within Theorem 1.
    Partition p({makeParityClass(0, Sign::Pos, 1, Parity::Even),
                 makeParityClass(0, Sign::Neg, 1, Parity::Odd),
                 cc(1, Sign::Pos)});
    EXPECT_EQ(p.completePairCount(), 1u);
    EXPECT_TRUE(p.satisfiesTheorem1());
}

TEST(Partition, DuplicateClassPanics)
{
    Partition p;
    p.add(cc(0, Sign::Pos));
    EXPECT_DEATH(p.add(cc(0, Sign::Pos)), "duplicate class");
}

TEST(Partition, DisjointnessByOverlap)
{
    Partition a({cc(0, Sign::Pos), cc(1, Sign::Pos)});
    Partition b({cc(0, Sign::Neg), cc(1, Sign::Neg)});
    Partition c({cc(0, Sign::Pos, 1)});
    Partition d({cc(0, Sign::Pos)});
    EXPECT_TRUE(a.disjointFrom(b));
    EXPECT_TRUE(a.disjointFrom(c)); // different VC
    EXPECT_FALSE(a.disjointFrom(d));
}

TEST(Partition, ParityDisjointness)
{
    Partition even({makeParityClass(1, Sign::Pos, 0, Parity::Even)});
    Partition odd({makeParityClass(1, Sign::Pos, 0, Parity::Odd)});
    Partition any({cc(1, Sign::Pos)});
    EXPECT_TRUE(even.disjointFrom(odd));
    EXPECT_FALSE(even.disjointFrom(any));
}

TEST(Partition, ClassesInDimKeepsOrder)
{
    Partition p({cc(1, Sign::Pos, 1), cc(0, Sign::Pos), cc(1, Sign::Neg, 0)});
    const auto in_y = p.classesInDim(1);
    ASSERT_EQ(in_y.size(), 2u);
    EXPECT_EQ(in_y[0], cc(1, Sign::Pos, 1));
    EXPECT_EQ(in_y[1], cc(1, Sign::Neg, 0));
    EXPECT_EQ(p.dimensionSpan(), 2);
}

TEST(PartitionScheme, ValidSchemeAccepted)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));
    const auto v = s.validate();
    EXPECT_TRUE(v.ok) << v.reason;
    EXPECT_EQ(s.numClasses(), 4u);
    EXPECT_EQ(s.dimensionSpan(), 2);
}

TEST(PartitionScheme, RejectsTheorem1Violation)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Pos),
                     cc(1, Sign::Neg)}));
    const auto v = s.validate();
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("Theorem 1"), std::string::npos);
}

TEST(PartitionScheme, RejectsOverlappingPartitions)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos)}));
    s.add(Partition({cc(0, Sign::Pos), cc(1, Sign::Pos)}));
    const auto v = s.validate();
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.reason.find("not disjoint"), std::string::npos);
}

TEST(PartitionScheme, RejectsEmptyPartition)
{
    PartitionScheme s;
    s.add(Partition{});
    EXPECT_FALSE(s.validate().ok);
}

TEST(PartitionScheme, PartitionOfFindsOwner)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos)}));
    s.add(Partition({cc(1, Sign::Pos)}));
    EXPECT_EQ(s.partitionOf(cc(1, Sign::Pos)), 1u);
    EXPECT_EQ(s.partitionOf(cc(0, Sign::Neg)), std::nullopt);
}

TEST(PartitionScheme, ToStringAndCanonicalKey)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));
    EXPECT_EQ(s.toString(), "{X1+ X1- Y1-} -> {Y1+}");
    EXPECT_EQ(s.toString(false), "{X+ X- Y-} -> {Y+}");
    EXPECT_EQ(s.canonicalKey(), s.toString());

    PartitionScheme reordered;
    reordered.add(Partition({cc(1, Sign::Pos)}));
    reordered.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg),
                             cc(1, Sign::Neg)}));
    EXPECT_NE(s.canonicalKey(), reordered.canonicalKey());
}

TEST(PartitionScheme, AllClassesPreservesOrder)
{
    PartitionScheme s;
    s.add(Partition({cc(1, Sign::Neg)}));
    s.add(Partition({cc(0, Sign::Pos)}));
    const auto all = s.allClasses();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0], cc(1, Sign::Neg));
    EXPECT_EQ(all[1], cc(0, Sign::Pos));
}

} // namespace
} // namespace ebda::core
