/**
 * @file
 * Unit tests for dimension sets and the Section 5.1 arrangements.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/arrange.hh"

namespace ebda::core {
namespace {

TEST(DimensionSet, MakeSetsLayout)
{
    const auto sets = makeSets({3, 2, 3});
    ASSERT_EQ(sets.size(), 3u);
    EXPECT_EQ(sets[0].dim, 0);
    EXPECT_EQ(sets[0].size(), 6u);
    EXPECT_EQ(sets[0].toString(), "D_X = {X1+ X1- X2+ X2- X3+ X3-}");
    EXPECT_EQ(sets[1].size(), 4u);
    EXPECT_EQ(sets[2].size(), 6u);
}

TEST(DimensionSet, ZeroVcDimensionsOmitted)
{
    const auto sets = makeSets({1, 0, 2});
    ASSERT_EQ(sets.size(), 2u);
    EXPECT_EQ(sets[0].dim, 0);
    EXPECT_EQ(sets[1].dim, 2);
}

TEST(DimensionSet, PairCountIsMinOfSigns)
{
    DimensionSet s;
    s.dim = 0;
    s.channels = {makeClass(0, Sign::Pos, 0), makeClass(0, Sign::Neg, 0),
                  makeClass(0, Sign::Pos, 1)};
    EXPECT_EQ(s.pairCount(), 1u);
    s.channels.push_back(makeClass(0, Sign::Neg, 1));
    EXPECT_EQ(s.pairCount(), 2u);
    // Removing one positive channel drops the count to 1 again — the
    // paper's walkthrough behaviour after consuming X1+.
    s.channels.erase(s.channels.begin());
    EXPECT_EQ(s.pairCount(), 1u);
}

TEST(DimensionSet, PopFrontConsumes)
{
    auto sets = makeSets({2});
    EXPECT_EQ(sets[0].popFront(), makeClass(0, Sign::Pos, 0));
    EXPECT_EQ(sets[0].popFront(), makeClass(0, Sign::Neg, 0));
    EXPECT_EQ(sets[0].size(), 2u);
}

TEST(Arrange1, SortsByPairCountDescending)
{
    // VCs (3, 2, 3): Z and X lead (3 pairs), Y trails.
    auto sets = makeSets({3, 2, 3});
    arrange1(sets);
    EXPECT_EQ(sets[0].dim, 0); // X stays first (stable among equals)
    EXPECT_EQ(sets[1].dim, 2);
    EXPECT_EQ(sets[2].dim, 1);
}

TEST(Arrangement2, PermutesEqualGroups)
{
    // Two equal-sized sets -> two orderings; the third is strictly
    // smaller and stays last.
    const auto all = arrangement2All(makeSets({2, 1, 2}));
    ASSERT_EQ(all.size(), 2u);
    std::set<std::string> firsts;
    for (const auto &arr : all) {
        EXPECT_EQ(arr.back().dim, 1);
        firsts.insert(dimLetter(arr.front().dim));
    }
    EXPECT_EQ(firsts, (std::set<std::string>{"X", "Z"}));
}

TEST(Arrangement2, AllEqualGivesFactorial)
{
    const auto all = arrangement2All(makeSets({1, 1, 1}));
    EXPECT_EQ(all.size(), 6u);
}

TEST(Arrangement3, RepairsFirstSetVcs)
{
    // Two VCs in the first set -> 2! pairings.
    const auto all = arrangement3All(makeSets({2, 1}));
    ASSERT_EQ(all.size(), 2u);
    // Canonical pairing: (X1+, X1-), (X2+, X2-).
    EXPECT_EQ(all[0][0].channels[0], makeClass(0, Sign::Pos, 0));
    EXPECT_EQ(all[0][0].channels[1], makeClass(0, Sign::Neg, 0));
    // Swapped pairing: (X2+, X1-), (X1+, X2-).
    EXPECT_EQ(all[1][0].channels[0], makeClass(0, Sign::Pos, 1));
    EXPECT_EQ(all[1][0].channels[1], makeClass(0, Sign::Neg, 0));
    EXPECT_EQ(all[1][0].channels[2], makeClass(0, Sign::Pos, 0));
    EXPECT_EQ(all[1][0].channels[3], makeClass(0, Sign::Neg, 1));
}

TEST(Arrangement3, CapsResults)
{
    const auto all = arrangement3All(makeSets({4, 1}), 5);
    EXPECT_EQ(all.size(), 5u); // 4! = 24 capped at 5
}

TEST(Arrangement3, EmptyArrangement)
{
    EXPECT_TRUE(arrangement3All({}).empty());
}

TEST(ArrangementToString, MultiLine)
{
    const auto sets = makeSets({1, 1});
    const std::string s = toString(sets);
    EXPECT_NE(s.find("Set1: D_X"), std::string::npos);
    EXPECT_NE(s.find("Set2: D_Y"), std::string::npos);
}

} // namespace
} // namespace ebda::core
