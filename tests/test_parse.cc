/**
 * @file
 * Unit tests for the scheme text parser: round-trips with the algebraic
 * rendering, parity/axis handling, and error reporting.
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "core/derivation.hh"
#include "core/parse.hh"

namespace ebda::core {
namespace {

TEST(ParseClass, BasicForms)
{
    EXPECT_EQ(parseChannelClass("X+"), makeClass(0, Sign::Pos));
    EXPECT_EQ(parseChannelClass("X1+"), makeClass(0, Sign::Pos));
    EXPECT_EQ(parseChannelClass("Y2-"), makeClass(1, Sign::Neg, 1));
    EXPECT_EQ(parseChannelClass("Z12+"), makeClass(2, Sign::Pos, 11));
    EXPECT_EQ(parseChannelClass("T1-"), makeClass(3, Sign::Neg));
    EXPECT_EQ(parseChannelClass("D5+"), makeClass(5, Sign::Pos));
    EXPECT_EQ(parseChannelClass(" X+ "), makeClass(0, Sign::Pos));
}

TEST(ParseClass, ParityDefaults)
{
    // Ye+ : Y channels in even columns — parity axis defaults to X.
    const auto ye = parseChannelClass("Ye+");
    ASSERT_TRUE(ye.has_value());
    EXPECT_EQ(*ye, makeParityClass(1, Sign::Pos, 0, Parity::Even));
    // Xo- : X channels in odd rows — axis defaults to Y.
    const auto xo = parseChannelClass("Xo-");
    ASSERT_TRUE(xo.has_value());
    EXPECT_EQ(*xo, makeParityClass(0, Sign::Neg, 1, Parity::Odd));
}

TEST(ParseClass, ExplicitParityAxis)
{
    const auto c = parseChannelClass("Ze@Y2+");
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, makeParityClass(2, Sign::Pos, 1, Parity::Even, 1));
}

TEST(ParseClass, Errors)
{
    std::string err;
    EXPECT_FALSE(parseChannelClass("Q+", &err));
    EXPECT_NE(err.find("dimension"), std::string::npos);
    EXPECT_FALSE(parseChannelClass("X", &err));
    EXPECT_NE(err.find("'+' or '-'"), std::string::npos);
    EXPECT_FALSE(parseChannelClass("X0+", &err)); // VCs are 1-based
    EXPECT_FALSE(parseChannelClass("X+junk", &err));
    EXPECT_NE(err.find("trailing"), std::string::npos);
    EXPECT_FALSE(parseChannelClass("", &err));
}

TEST(ParsePartition, Basics)
{
    const auto p = parsePartition("{X+ X- Y-}");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size(), 3u);
    EXPECT_EQ(p->toString(false), "{X+ X- Y-}");
    EXPECT_TRUE(parsePartition("{}").has_value());
}

TEST(ParsePartition, Errors)
{
    std::string err;
    EXPECT_FALSE(parsePartition("X+ Y+}", &err));
    EXPECT_FALSE(parsePartition("{X+ Y+", &err));
    EXPECT_NE(err.find("unterminated"), std::string::npos);
    EXPECT_FALSE(parsePartition("{X+ X+}", &err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(ParseScheme, RoundTripsCatalog)
{
    for (const auto &scheme :
         {schemeFig6P1(), schemeFig6P2(), schemeFig6P3(), schemeFig6P4(),
          schemeFig6P5(), schemeNorthLast(), schemeFig7b(), schemeFig7c(),
          schemeFig9b(), schemeFig9c(), schemeOddEven(),
          schemeHamiltonian(), schemePartial3d()}) {
        std::string err;
        const auto parsed = parseScheme(scheme.toString(), &err);
        ASSERT_TRUE(parsed.has_value())
            << scheme.toString() << " : " << err;
        EXPECT_EQ(parsed->canonicalKey(), scheme.canonicalKey());
    }
}

TEST(ParseScheme, MultiplePartitions)
{
    const auto s = parseScheme("{X+}->{X-} -> {Y+} ->{Y-}");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->size(), 4u);
    EXPECT_TRUE(s->validate().ok);
}

TEST(ParseScheme, StructuralOnlyNoTheoremCheck)
{
    // The parser accepts Theorem-1-violating schemes; validate() is a
    // separate step (so the CLI can *report* the violation).
    const auto s = parseScheme("{X+ X- Y+ Y-}");
    ASSERT_TRUE(s.has_value());
    EXPECT_FALSE(s->validate().ok);
}

TEST(ParseScheme, Errors)
{
    std::string err;
    EXPECT_FALSE(parseScheme("{X+} {Y+}", &err));
    EXPECT_NE(err.find("->"), std::string::npos);
    EXPECT_FALSE(parseScheme("", &err));
}

TEST(ParseScheme, FuzzRoundTripDerivedSchemes)
{
    // Everything the derivation machinery can emit must round-trip
    // through its textual form.
    for (const auto &vcs :
         {std::vector<int>{1, 1}, std::vector<int>{2, 2},
          std::vector<int>{3, 2, 3}, std::vector<int>{1, 2, 1}}) {
        for (const auto &scheme : deriveAll(vcs)) {
            std::string err;
            const auto parsed = parseScheme(scheme.toString(), &err);
            ASSERT_TRUE(parsed.has_value())
                << scheme.toString() << " : " << err;
            EXPECT_EQ(parsed->canonicalKey(), scheme.canonicalKey());
            EXPECT_TRUE(parsed->validate().ok);
        }
    }
}

TEST(ParseLists, VcsAndDims)
{
    EXPECT_EQ(parseVcList("3,2,3"), (std::vector<int>{3, 2, 3}));
    EXPECT_EQ(parseVcList("1"), (std::vector<int>{1}));
    EXPECT_EQ(parseDims("8x8"), (std::vector<int>{8, 8}));
    EXPECT_EQ(parseDims("4x4x3"), (std::vector<int>{4, 4, 3}));
    std::string err;
    EXPECT_FALSE(parseVcList("3,,2", &err));
    EXPECT_FALSE(parseDims("8y8", &err));
    EXPECT_FALSE(parseDims("", &err));
}

} // namespace
} // namespace ebda::core
