/**
 * @file
 * Correctness suite for the sharded cycle backend (sim/shard_sched.hh)
 * and its spatial partitioner (sim/shard_partition.hh).
 *
 * The contract under test, in order of importance:
 *  1. shards = 1 forces the classic CycleScheduler — every golden-sim
 *     configuration must produce a bit-identical SimResult (full JSON,
 *     schedMode and wakeups included).
 *  2. A sharded run is a pure function of (config, shard count): for a
 *     fixed shard count the full result JSON is identical across
 *     repeated runs and across every worker-thread count, including
 *     oversubscription (EBDA_SHARD_THREADS above the core count) —
 *     which is why this suite needs no multi-core reference machine,
 *     and why it is meaningful under TSan on one core.
 *  3. Conservation against the classic backend: generation is driven
 *     by per-node RNG substreams over the same cycle window, so a
 *     drained sharded run must eject exactly the classic run's packet
 *     and measured-flit counts (latency statistics may differ — the
 *     cut-credit lag makes a sharded run a slightly different, equally
 *     valid, simulation).
 *  4. Partition shapes: grid slabs cut only boundary links (torus wrap
 *     links included), dragonfly partitions never split a group, every
 *     shard is non-empty.
 *  5. Config plumbing: `shards` round-trips through the JSON codec and
 *     is omitted when 0, keeping legacy sweep cache keys byte-stable.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/catalog.hh"
#include "core/torus.hh"
#include "routing/baselines.hh"
#include "routing/dragonfly.hh"
#include "routing/ebda_routing.hh"
#include "sim/shard_partition.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "util/json.hh"

namespace {

using namespace ebda;

sim::SimResult
runWith(const topo::Network &net, const cdg::RoutingRelation &routing,
        const sim::TrafficGenerator &gen, sim::SimConfig cfg,
        int shards)
{
    cfg.shards = shards;
    cfg.schedMode = sim::SchedMode::Cycle;
    sim::Simulator s(net, routing, gen, cfg);
    return s.run();
}

/** Run with a pinned worker-thread count (restores the environment). */
sim::SimResult
runWithThreads(const topo::Network &net,
               const cdg::RoutingRelation &routing,
               const sim::TrafficGenerator &gen,
               const sim::SimConfig &cfg, int shards, int threads)
{
    ::setenv("EBDA_SHARD_THREADS", std::to_string(threads).c_str(), 1);
    auto r = runWith(net, routing, gen, cfg, shards);
    ::unsetenv("EBDA_SHARD_THREADS");
    return r;
}

sim::SimConfig
baseConfig()
{
    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.15;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    return cfg;
}

// ---------------------------------------------------------------------
// 1. shards = 1 is the classic backend, bit for bit, over the full
//    golden grid (same 24 rows test_golden_sim.cc pins).

struct GoldenRow
{
    int topo;
    sim::SelectionPolicy selection;
    sim::SwitchingMode switching;
};

class ShardGolden : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(ShardGolden, OneShardBitIdenticalToClassic)
{
    const GoldenRow &row = GetParam();
    const auto net = row.topo == 0
        ? topo::Network::mesh({4, 4}, {1, 2})
        : topo::Network::torus({4, 4}, {2, 2});
    const auto scheme = row.topo == 0 ? core::schemeFig7b()
                                      : core::torusAdaptiveScheme2d();
    const routing::EbDaRouting router(
        net, scheme, {},
        row.topo == 0 ? routing::EbDaRouting::Mode::Minimal
                      : routing::EbDaRouting::Mode::ShortestState);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg = baseConfig();
    cfg.selection = row.selection;
    cfg.switching = row.switching;

    const auto classic = runWith(net, router, gen, cfg, 0);
    const auto one = runWith(net, router, gen, cfg, 1);
    EXPECT_EQ(sim::toJson(classic), sim::toJson(one));
}

std::string
goldenRowName(const ::testing::TestParamInfo<GoldenRow> &info)
{
    const GoldenRow &row = info.param;
    std::string n = row.topo == 0 ? "Mesh4x4" : "Torus4x4";
    n += row.selection == sim::SelectionPolicy::MaxCredits ? "MaxCredits"
        : row.selection == sim::SelectionPolicy::RoundRobin ? "RoundRobin"
        : row.selection == sim::SelectionPolicy::Random     ? "Random"
                                                        : "FirstCandidate";
    n += row.switching == sim::SwitchingMode::Wormhole ? "Wormhole"
        : row.switching == sim::SwitchingMode::VirtualCutThrough ? "Vct"
                                                                 : "Saf";
    return n;
}

std::vector<GoldenRow>
allGoldenRows()
{
    std::vector<GoldenRow> rows;
    for (int topo = 0; topo < 2; ++topo)
        for (const auto sel :
             {sim::SelectionPolicy::MaxCredits,
              sim::SelectionPolicy::RoundRobin,
              sim::SelectionPolicy::Random,
              sim::SelectionPolicy::FirstCandidate})
            for (const auto sw :
                 {sim::SwitchingMode::Wormhole,
                  sim::SwitchingMode::VirtualCutThrough,
                  sim::SwitchingMode::StoreAndForward})
                rows.push_back({topo, sel, sw});
    return rows;
}

INSTANTIATE_TEST_SUITE_P(AllGoldenRows, ShardGolden,
                         ::testing::ValuesIn(allGoldenRows()),
                         goldenRowName);

// ---------------------------------------------------------------------
// 2+3. Sharded runs: deterministic for a fixed shard count across
//      repeats and worker-thread counts, and conservation-equal to the
//      classic run.

void
expectShardedDeterministic(const topo::Network &net,
                           const cdg::RoutingRelation &routing,
                           const sim::TrafficGenerator &gen,
                           const sim::SimConfig &cfg, int shards)
{
    const auto classic = runWith(net, routing, gen, cfg, 1);
    const auto ref = runWith(net, routing, gen, cfg, shards);
    const std::string ref_json = sim::toJson(ref);

    // Repeat run: identical.
    EXPECT_EQ(ref_json, sim::toJson(runWith(net, routing, gen, cfg,
                                            shards)))
        << shards << " shards: repeated run diverged";
    // Worker-thread count must not matter: serial execution of all
    // shards, one thread per shard, and oversubscription beyond both
    // the shard count and this machine's core count.
    for (const int threads : {1, 2, shards, 3 * shards}) {
        EXPECT_EQ(ref_json,
                  sim::toJson(runWithThreads(net, routing, gen, cfg,
                                             shards, threads)))
            << shards << " shards diverged at " << threads
            << " worker thread(s)";
    }

    // The sharded backend still reports a Cycle-mode run and keeps the
    // classic wakeups accounting (one per executed cycle, plus the
    // final bottom-break iteration when it drains).
    EXPECT_EQ(ref.schedMode, sim::SchedMode::Cycle);
    ASSERT_TRUE(classic.drained);
    ASSERT_TRUE(ref.drained);
    EXPECT_EQ(ref.wakeups, ref.cycles + 1);

    // Conservation vs. classic: same generation stream, fully drained,
    // so the delivered counts must match exactly even though latency
    // statistics legitimately differ (cut-credit lag).
    EXPECT_EQ(ref.packetsEjected, classic.packetsEjected);
    EXPECT_EQ(ref.packetsMeasured, classic.packetsMeasured);
    EXPECT_DOUBLE_EQ(ref.offeredRate, classic.offeredRate);
    EXPECT_EQ(ref.deliveredFraction, 1.0);
}

TEST(ShardEquiv, Mesh8x8TwoAndFourShards)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (const int shards : {2, 4})
        expectShardedDeterministic(net, router, gen, baseConfig(),
                                   shards);
}

/** Torus wrap links connect the first and last slab: the cut-edge set
 *  includes wrap edges in both directions, the case where a naive
 *  "neighbouring slabs only" mailbox setup would break. */
TEST(ShardEquiv, TorusWrapEdgesCrossCuts)
{
    const auto net = topo::Network::torus({4, 4}, {2, 2});
    const routing::EbDaRouting router(
        net, core::torusAdaptiveScheme2d(), {},
        routing::EbDaRouting::Mode::ShortestState);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    for (const int shards : {2, 4})
        expectShardedDeterministic(net, router, gen, baseConfig(),
                                   shards);
}

/** Non-uniform traffic exercises skewed boundary flows (all pairs
 *  crossing the transpose diagonal). */
TEST(ShardEquiv, TransposeTrafficSharded)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net,
                                    sim::TrafficPattern::Transpose);
    sim::SimConfig cfg = baseConfig();
    cfg.injectionRate = 0.08;
    expectShardedDeterministic(net, router, gen, cfg, 4);
}

TEST(ShardEquiv, DragonflyShardedRun)
{
    const auto net = topo::Network::dragonfly(4, 2, 2);
    const routing::DragonflyMinRouting router(net, 4);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg = baseConfig();
    cfg.seed = 23;
    cfg.injectionRate = 0.05;
    expectShardedDeterministic(net, router, gen, cfg, 3);
}

/** A deadlocking configuration must deadlock deterministically under
 *  sharding too, with the forensic walk running on the frozen fabric
 *  after the workers join. */
TEST(ShardEquiv, DeadlockedShardedRunIsDeterministic)
{
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const routing::MinimalAdaptiveRouting router(net);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg = baseConfig();
    cfg.injectionRate = 0.6;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.watchdogCycles = 500;

    const auto a = runWithThreads(net, router, gen, cfg, 2, 1);
    const auto b = runWithThreads(net, router, gen, cfg, 2, 2);
    EXPECT_TRUE(a.deadlocked);
    EXPECT_FALSE(a.deadlockCycle.empty())
        << "deadlocked sharded run must carry a forensic witness";
    EXPECT_EQ(sim::toJson(a), sim::toJson(b));

    // The classic run deadlocks on this configuration too.
    EXPECT_TRUE(runWith(net, router, gen, cfg, 1).deadlocked);
}

// ---------------------------------------------------------------------
// 4. Partition shapes.

TEST(ShardPartition, GridSlabsAreContiguousAndBalanced)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    for (const int shards : {2, 4, 8}) {
        const auto shard_of = sim::partitionNodes(net, shards);
        ASSERT_EQ(shard_of.size(), net.numNodes());
        std::vector<std::size_t> count(
            static_cast<std::size_t>(shards), 0);
        for (topo::NodeId v = 0; v < net.numNodes(); ++v) {
            ASSERT_LT(shard_of[v], shards);
            ++count[shard_of[v]];
        }
        // Slabs along one dimension of an 8x8 mesh: exactly 64/shards
        // nodes each, and each slab spans whole rows of the slab axis.
        for (const std::size_t c : count)
            EXPECT_EQ(c, net.numNodes() / static_cast<std::size_t>(shards));
        // A slab partition: the shard is a function of the slab-axis
        // coordinate alone (8x8 ties toward dimension 0), so nodes
        // sharing that coordinate always share a shard.
        for (topo::NodeId u = 0; u < net.numNodes(); ++u) {
            for (topo::NodeId v = 0; v < net.numNodes(); ++v) {
                if (net.coordAlong(u, 0) == net.coordAlong(v, 0)) {
                    EXPECT_EQ(shard_of[u], shard_of[v]);
                }
            }
        }
    }
}

TEST(ShardPartition, DragonflyPartitionNeverSplitsAGroup)
{
    const auto net = topo::Network::dragonfly(4, 2, 2);
    const auto shape = net.dragonflyShape();
    ASSERT_TRUE(shape.has_value());
    for (const int shards : {2, 3, static_cast<int>(shape->groups)}) {
        const auto shard_of = sim::partitionNodes(net, shards);
        std::vector<std::size_t> count(
            static_cast<std::size_t>(shards), 0);
        for (topo::NodeId v = 0; v < net.numNodes(); ++v)
            ++count[shard_of[v]];
        for (const std::size_t c : count)
            EXPECT_GT(c, 0u) << shards << " shards left one empty";
        // All routers of a group share a shard.
        for (topo::NodeId v = 0; v < net.numNodes(); ++v) {
            const topo::NodeId g0 = v - (v % static_cast<topo::NodeId>(
                                             shape->a));
            EXPECT_EQ(shard_of[v], shard_of[g0])
                << "group of node " << v << " split across shards";
        }
    }
}

TEST(ShardPartition, FullMeshUsesBfsChunksEveryShardNonEmpty)
{
    const auto net = topo::Network::fullMesh(10, 2);
    for (const int shards : {2, 3, 10}) {
        const auto shard_of = sim::partitionNodes(net, shards);
        std::vector<std::size_t> count(
            static_cast<std::size_t>(shards), 0);
        for (topo::NodeId v = 0; v < net.numNodes(); ++v)
            ++count[shard_of[v]];
        for (const std::size_t c : count)
            EXPECT_GT(c, 0u);
    }
}

TEST(ShardPartition, ResolveRules)
{
    // Fallback gates: faults, protocol, uncompiled table.
    EXPECT_EQ(sim::resolveShardCount(4, 4096, true, true, false), 1);
    EXPECT_EQ(sim::resolveShardCount(4, 4096, true, false, true), 1);
    EXPECT_EQ(sim::resolveShardCount(4, 4096, false, false, false), 1);
    // Explicit requests clamp to [1, min(nodes, kMaxShards)].
    EXPECT_EQ(sim::resolveShardCount(4, 4096, true, false, false), 4);
    EXPECT_EQ(sim::resolveShardCount(1, 4096, true, false, false), 1);
    EXPECT_EQ(sim::resolveShardCount(100, 16, true, false, false), 16);
    EXPECT_EQ(sim::resolveShardCount(100000, 1 << 20, true, false,
                                     false),
              sim::kMaxShards);
    // Auto: classic below the cutoff, fabric-size-derived above —
    // never a function of the machine.
    EXPECT_EQ(sim::resolveShardCount(0, 64, true, false, false), 1);
    EXPECT_EQ(sim::resolveShardCount(
                  0, sim::kAutoShardNodeCutoff - 1, true, false, false),
              1);
    EXPECT_EQ(sim::resolveShardCount(
                  0, sim::kAutoShardNodeCutoff, true, false, false),
              4);
    EXPECT_EQ(sim::resolveShardCount(0, 4096, true, false, false), 8);
}

TEST(ShardPartition, WorkerThreadsHonourEnvAndShardCap)
{
    ::setenv("EBDA_SHARD_THREADS", "3", 1);
    EXPECT_EQ(sim::shardWorkerThreads(8), 3u);
    EXPECT_EQ(sim::shardWorkerThreads(2), 2u); // capped by shards
    ::setenv("EBDA_SHARD_THREADS", "64", 1);
    EXPECT_EQ(sim::shardWorkerThreads(4), 4u);
    ::unsetenv("EBDA_SHARD_THREADS");
    EXPECT_GE(sim::shardWorkerThreads(4), 1u);
    EXPECT_LE(sim::shardWorkerThreads(4), 4u);
}

// ---------------------------------------------------------------------
// 5. Config plumbing: JSON round-trip and legacy cache-key stability.

TEST(ShardConfig, JsonRoundTripAndLegacyStability)
{
    sim::SimConfig legacy; // shards = 0 (auto) — the pre-shards default
    sim::SimConfig sharded = legacy;
    sharded.shards = 4;
    sim::SimConfig forced = legacy;
    forced.shards = 1;

    const std::string legacy_json = sim::toJson(legacy);
    // Auto is the default: omitted, so every pre-shards cache key and
    // golden config byte stays identical.
    EXPECT_EQ(legacy_json.find("\"shards\""), std::string::npos);
    // Any explicit count — 1 included — is part of the config identity
    // (shards = 1 forces the classic backend even on huge fabrics
    // where auto would shard, so it must not serialize like auto).
    EXPECT_NE(sim::toJson(sharded).find("\"shards\":4"),
              std::string::npos);
    EXPECT_NE(sim::toJson(forced).find("\"shards\":1"),
              std::string::npos);

    for (const sim::SimConfig &cfg : {legacy, sharded, forced}) {
        const auto doc = parseJson(sim::toJson(cfg));
        ASSERT_TRUE(doc.has_value());
        std::string err;
        const auto back = sim::configFromJson(*doc, &err);
        ASSERT_TRUE(back.has_value()) << err;
        EXPECT_EQ(back->shards, cfg.shards);
        EXPECT_EQ(sim::toJson(*back), sim::toJson(cfg));
    }
}

} // namespace
