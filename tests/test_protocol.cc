/**
 * @file
 * Request–reply protocol layer (sim/protocol.hh): the message-
 * dependency deadlock witness on a Dally-verified fabric, the
 * reply-class escape, replay determinism of the per-endpoint RNG
 * substreams, byte-stability of pre-protocol wire formats, config
 * validation, and the hardened JSON parser's rejection paths.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sim/traffic.hh"
#include "sweep/router_factory.hh"
#include "sweep/sweep_spec.hh"
#include "topo/network.hh"
#include "util/json.hh"

namespace ebda {
namespace {

/** The bench's wedge workload: XY on a 4x4 mesh with 2 VCs per link
 *  (channel-level Dally-clean), hot enough that a depth-1 endpoint
 *  buffer closes the request→endpoint→reply cycle. */
sim::SimConfig
wedgeConfig(int message_classes)
{
    sim::SimConfig cfg;
    cfg.injectionRate = 0.35;
    cfg.measureCycles = 2000;
    cfg.warmupCycles = 500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 800;
    cfg.faults.maxRecoveryAttempts = 0;
    cfg.protocol.requestReply = true;
    cfg.protocol.replyBufferDepth = 1;
    cfg.protocol.messageClasses = message_classes;
    return cfg;
}

/** Everything lives behind stable pointers: the router holds a
 *  reference into the network and the simulator into all three, so
 *  the aggregate must survive moves without relocating them. */
struct ProtoRun
{
    std::unique_ptr<topo::Network> net;
    std::unique_ptr<cdg::RoutingRelation> router;
    std::unique_ptr<sim::TrafficGenerator> gen;
    std::unique_ptr<sim::Simulator> simulator;
    sim::SimResult result;
};

ProtoRun
runWedgeWorkload(const sim::SimConfig &cfg)
{
    ProtoRun r;
    r.net = std::make_unique<topo::Network>(
        topo::Network::mesh({4, 4}, {2, 2}));
    std::string err;
    r.router = sweep::makeRouter(*r.net, "xy", &err);
    EXPECT_TRUE(r.router) << err;
    r.gen = std::make_unique<sim::TrafficGenerator>(
        *r.net, sim::TrafficPattern::Uniform);
    r.simulator = std::make_unique<sim::Simulator>(*r.net, *r.router,
                                                   *r.gen, cfg);
    r.result = r.simulator->run();
    return r;
}

/** One shared message class on a Dally-verified mesh must wedge, and
 *  the forensics must pin it as a *protocol* deadlock: a concrete
 *  wait-for cycle through an endpoint vertex while the channel-level
 *  oracle still certifies the routing relation clean. */
TEST(Protocol, SingleClassWedgesWithProtocolWitness)
{
    const auto run = runWedgeWorkload(wedgeConfig(1));
    const auto &r = run.result;
    EXPECT_TRUE(r.deadlocked);
    EXPECT_TRUE(r.protocolEnabled);
    EXPECT_TRUE(r.protocolDeadlock);

    const auto &f = run.simulator->forensics();
    EXPECT_TRUE(f.protocolRun);
    EXPECT_TRUE(f.protocolDeadlock);
    EXPECT_TRUE(f.channelOracleClean);
    ASSERT_FALSE(f.waitCycle.empty());
    // The witness must actually cross the message-dependency layer:
    // at least one vertex is an injection or endpoint vertex, which
    // the channel CDG cannot represent.
    bool crosses = false;
    for (const auto v : f.waitCycle)
        crosses = crosses || v >= f.numChannels;
    EXPECT_TRUE(crosses);
    // And the human-readable dump must say so.
    const std::string text = f.describe(*run.net);
    EXPECT_NE(text.find("protocol (message-dependency) deadlock"),
              std::string::npos);
    EXPECT_NE(text.find("Dally oracle on the relation: clean"),
              std::string::npos);
    EXPECT_NE(text.find("endpoint@node"), std::string::npos);
}

/** The identical workload with the reply-class escape must complete
 *  watchdog-clean and deliver essentially everything. */
TEST(Protocol, ReplyClassEscapeCompletesClean)
{
    const auto run = runWedgeWorkload(wedgeConfig(2));
    const auto &r = run.result;
    EXPECT_FALSE(r.deadlocked);
    EXPECT_FALSE(r.protocolDeadlock);
    EXPECT_GE(r.deliveredFraction, 0.99);
    EXPECT_GT(r.protocolRequestsDelivered, 0u);
    EXPECT_GT(r.protocolRepliesDelivered, 0u);
}

/** Buffer reservation (end-to-end credit) is a throttle, not a proof:
 *  with headroom it completes (requests throttled, never wedged), but
 *  at depth 1 the reservation and the serving side contend for the
 *  same slot and the wedge is still reachable — and the forensics
 *  must then follow the requester-side spawned-message edges to a
 *  concrete protocol witness. */
TEST(Protocol, BufferReservationThrottlesWithHeadroom)
{
    auto cfg = wedgeConfig(1);
    cfg.protocol.reserveReplyBuffer = true;
    cfg.protocol.replyBufferDepth = 8;
    const auto run = runWedgeWorkload(cfg);
    EXPECT_FALSE(run.result.deadlocked);
    EXPECT_GE(run.result.deliveredFraction, 0.99);
    EXPECT_GT(run.result.protocolThrottled, 0u);
    EXPECT_LE(run.result.protocolPeakOccupancy, 8u);
}

TEST(Protocol, BufferReservationDepthOneStillWedgesWithWitness)
{
    auto cfg = wedgeConfig(1);
    cfg.protocol.reserveReplyBuffer = true;
    const auto run = runWedgeWorkload(cfg);
    EXPECT_TRUE(run.result.deadlocked);
    EXPECT_TRUE(run.result.protocolDeadlock);
    EXPECT_FALSE(run.simulator->forensics().waitCycle.empty());
}

/** The bounded recovery escalation: aborting and retransmitting the
 *  oldest in-fabric request un-wedges marginal configurations, so the
 *  watchdog only declares a wedge after the pass budget is spent. */
TEST(Protocol, RecoveryPassesUnwedgeMarginalRuns)
{
    auto cfg = wedgeConfig(1);
    cfg.protocol.reserveReplyBuffer = true;
    cfg.protocol.replyBufferDepth = 2;
    cfg.faults.maxRecoveryAttempts = 3;
    const auto run = runWedgeWorkload(cfg);
    EXPECT_FALSE(run.result.deadlocked);
    EXPECT_GE(run.result.recoveryPasses, 1u);
    EXPECT_GE(run.result.packetsRetransmitted, 1u);
}

/** Protocol runs are replay-deterministic (the per-endpoint service
 *  jitter comes from dedicated RNG substreams), and those substreams
 *  never perturb the per-router traffic streams: a protocol run
 *  offers exactly the load the plain run does under the same seed. */
TEST(Protocol, ReplayBitIdenticalAndTrafficStreamsUntouched)
{
    auto cfg = wedgeConfig(2);
    cfg.protocol.replyBufferDepth = 8;
    cfg.protocol.serviceJitter = 5;
    const auto a = runWedgeWorkload(cfg);
    const auto b = runWedgeWorkload(cfg);
    EXPECT_EQ(sim::toJson(a.result), sim::toJson(b.result));

    // With no drain phase both runs execute exactly warmup + measure
    // generation cycles, so the offered load is a pure function of
    // the per-router streams — bit-equal iff the protocol layer never
    // draws from them.
    cfg.drainCycles = 0;
    const auto on = runWedgeWorkload(cfg);
    sim::SimConfig plain = cfg;
    plain.protocol = sim::ProtocolConfig{};
    const auto off = runWedgeWorkload(plain);
    EXPECT_FALSE(off.result.protocolEnabled);
    EXPECT_EQ(off.result.offeredRate, on.result.offeredRate);
}

/** Pre-protocol wire formats must stay byte-identical: a default
 *  config serializes without any "protocol" member, and a legacy
 *  sweep spec expands to the exact cache keys it produced before the
 *  protocol layer existed (pinned from a pre-protocol build). */
TEST(Protocol, LegacyWireFormatsAreByteStable)
{
    EXPECT_EQ(sim::toJson(sim::SimConfig{}).find("protocol"),
              std::string::npos);

    const std::string spec_text =
        R"({"topologies":[{"kind":"mesh","dims":[4,4],"vcs":[2,2]}],)"
        R"("routers":["xy"],"patterns":["uniform"],)"
        R"("rates":[0.1,0.2],"sim":{"measureCycles":1000}})";
    std::string err;
    const auto spec = sweep::SweepSpec::parse(spec_text, &err);
    ASSERT_TRUE(spec) << err;
    const auto jobs = spec->expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(sweep::keyToHex(jobs[0].key), "c59e5b85607ea28b");
    EXPECT_EQ(sweep::keyToHex(jobs[1].key), "8e8d65ce5c347661");
    EXPECT_EQ(jobs[0].canonical.find("protocol"), std::string::npos);
}

/** An enabled ProtocolConfig round-trips through the config JSON. */
TEST(Protocol, ConfigRoundTripsThroughJson)
{
    sim::SimConfig cfg;
    cfg.protocol.requestReply = true;
    cfg.protocol.replyBufferDepth = 3;
    cfg.protocol.serviceLatency = 17;
    cfg.protocol.serviceJitter = 2;
    cfg.protocol.messageClasses = 2;
    cfg.protocol.reserveReplyBuffer = true;
    const auto doc = parseJson(sim::toJson(cfg));
    ASSERT_TRUE(doc);
    std::string err;
    const auto back = sim::configFromJson(*doc, &err);
    ASSERT_TRUE(back) << err;
    EXPECT_TRUE(back->protocol.requestReply);
    EXPECT_EQ(back->protocol.replyBufferDepth, 3);
    EXPECT_EQ(back->protocol.serviceLatency, 17u);
    EXPECT_EQ(back->protocol.serviceJitter, 2u);
    EXPECT_EQ(back->protocol.messageClasses, 2);
    EXPECT_TRUE(back->protocol.reserveReplyBuffer);
    EXPECT_EQ(sim::toJson(*back), sim::toJson(cfg));
}

/** Nonsensical protocol configs fail construction with a named error
 *  instead of silently mis-simulating. */
TEST(Protocol, InvalidConfigsThrow)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    std::string err;
    const auto router = sweep::makeRouter(net, "xy", &err);
    ASSERT_TRUE(router) << err;
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    const auto build = [&](const sim::SimConfig &cfg) {
        sim::Simulator s(net, *router, gen, cfg);
    };
    sim::SimConfig cfg;
    cfg.protocol.requestReply = true;

    cfg.protocol.replyBufferDepth = 0;
    EXPECT_THROW(build(cfg), std::invalid_argument);
    cfg.protocol.replyBufferDepth = 4;

    cfg.protocol.messageClasses = 3;
    EXPECT_THROW(build(cfg), std::invalid_argument);

    // Two classes need at least two injection VCs...
    cfg.protocol.messageClasses = 2;
    cfg.injectionVcs = 1;
    EXPECT_THROW(build(cfg), std::invalid_argument);
    cfg.injectionVcs = 2;

    // ...and at least two VCs on every link to carve the reply band.
    const auto thin = topo::Network::mesh({4, 4}, {1, 1});
    const auto thin_router = sweep::makeRouter(thin, "xy", &err);
    ASSERT_TRUE(thin_router) << err;
    const sim::TrafficGenerator thin_gen(thin,
                                         sim::TrafficPattern::Uniform);
    EXPECT_THROW(
        sim::Simulator(thin, *thin_router, thin_gen, cfg),
        std::invalid_argument);
}

/** Permutation patterns expose their fixed communication partner;
 *  randomized patterns do not. */
TEST(Protocol, TrafficPartnerHelper)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const sim::TrafficGenerator bitcomp(
        net, sim::TrafficPattern::BitComplement);
    // bitcomp on 16 nodes: partner of 0 is 15, and it is symmetric.
    ASSERT_TRUE(bitcomp.partner(0).has_value());
    EXPECT_EQ(*bitcomp.partner(0), 15u);
    EXPECT_EQ(*bitcomp.partner(15), 0u);

    const sim::TrafficGenerator uniform(net,
                                        sim::TrafficPattern::Uniform);
    EXPECT_FALSE(uniform.partner(0).has_value());

    // Tornado on a 1-ary dimension maps a node to itself → nullopt.
    const auto line = topo::Network::mesh({2}, {1});
    const sim::TrafficGenerator neighbor(line,
                                         sim::TrafficPattern::Neighbor);
    ASSERT_TRUE(neighbor.partner(0).has_value());
    EXPECT_EQ(*neighbor.partner(0), 1u);
}

/** The hardened parser rejects duplicate object keys and non-finite
 *  numerics with errors naming the offending path — both would
 *  otherwise silently corrupt a config or cache line. */
TEST(JsonHardening, RejectsDuplicateKeysAndNonFiniteNumbers)
{
    std::string err;

    EXPECT_FALSE(parseJson(R"({"a":1,"a":2})", &err));
    EXPECT_NE(err.find("duplicate object key 'a'"), std::string::npos)
        << err;

    EXPECT_FALSE(parseJson(R"({"cfg":{"rate":0.1,"rate":0.2}})", &err));
    EXPECT_NE(err.find("duplicate object key 'cfg.rate'"),
              std::string::npos)
        << err;

    // 1e999 overflows to +Inf: not representable in the wire format.
    EXPECT_FALSE(parseJson(R"({"x":1e999})", &err));
    EXPECT_NE(err.find("non-finite number at 'x'"), std::string::npos)
        << err;

    // The path names nested containers, arrays included.
    EXPECT_FALSE(parseJson(R"({"rows":[{"v":1},{"v":-1e999}]})", &err));
    EXPECT_NE(err.find("rows[1].v"), std::string::npos) << err;

    // NaN/Infinity literals are not JSON at all.
    EXPECT_FALSE(parseJson(R"({"x":NaN})", &err));
    EXPECT_FALSE(parseJson(R"({"x":Infinity})", &err));

    // Well-formed finite input still parses and round-trips.
    const auto ok = parseJson(R"({"a":{"b":[1,2.5,-3]}})", &err);
    ASSERT_TRUE(ok) << err;
}

} // namespace
} // namespace ebda
