/**
 * @file
 * Fleet-scale sweep-engine tests: binary record store crash recovery
 * (torn tails, lost index appends, index rebuilds), legacy JSONL
 * migration and export/import round-trips, group commit, checkpoint
 * manifests and resume semantics, cost-ordered scheduling determinism,
 * and adaptive knee refinement.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unistd.h>

#include "sim/sim_json.hh"
#include "sweep/manifest.hh"
#include "sweep/record_store.hh"
#include "sweep/refine.hh"
#include "sweep/result_cache.hh"
#include "sweep/runner.hh"
#include "sweep/sweep_spec.hh"
#include "sweep/thread_pool.hh"
#include "util/json.hh"

namespace {

using namespace ebda;

const char *kSpecText = R"({
  "name": "engine",
  "topology": {"type": "mesh", "dims": [4, 4], "vcs": [2, 2]},
  "routers": ["xy", "fig7b"],
  "patterns": ["uniform", "transpose"],
  "rates": [0.05, 0.1],
  "sim": {"seed": 7, "warmupCycles": 100, "measureCycles": 300,
          "drainCycles": 3000, "watchdogCycles": 1500}
})";

sweep::SweepSpec
specOrDie(const std::string &text)
{
    std::string err;
    const auto spec = sweep::SweepSpec::parse(text, &err);
    EXPECT_TRUE(spec) << err;
    return *spec;
}

/** RAII scratch directory under the test's working directory. */
struct ScratchDir
{
    explicit ScratchDir(const std::string &tag)
        : path("sweep-engine-test-" + tag + "-"
               + std::to_string(::getpid()))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    std::string path;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string
resultsJsonl(const std::vector<sweep::SweepJob> &jobs,
             const sweep::SweepReport &report)
{
    std::ostringstream out;
    sweep::writeResultsJsonl(jobs, report.outcomes, out);
    return out.str();
}

sim::SimResult
mkResult(double latency, std::uint64_t packets)
{
    sim::SimResult r;
    r.avgLatency = latency;
    r.packetsMeasured = packets;
    return r;
}

// ----------------------------------------------------------- record store

TEST(RecordStore, TornTailIsTruncatedOnOpen)
{
    const ScratchDir dir("torn");
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0x10ULL, "{}", mkResult(1.0, 1));
        writer.store(0x20ULL, "{}", mkResult(2.0, 2));
    }
    const auto intact =
        std::filesystem::file_size(sweep::ResultCache::binFile(dir.path));
    {
        // A killed writer's half-written record: a valid-looking magic
        // followed by garbage that cannot hold a full header.
        std::ofstream out(sweep::ResultCache::binFile(dir.path),
                          std::ios::app | std::ios::binary);
        out << "EBDRgarbage";
    }

    sweep::ResultCache cache(dir.path);
    EXPECT_EQ(cache.tornBytesTruncated(), 11u);
    EXPECT_EQ(cache.corruptedLines(), 1u);
    EXPECT_EQ(cache.entries(), 2u);
    ASSERT_TRUE(cache.lookup(0x10ULL));
    ASSERT_TRUE(cache.lookup(0x20ULL));
    // The file really was truncated back to the intact prefix.
    EXPECT_EQ(
        std::filesystem::file_size(sweep::ResultCache::binFile(dir.path)),
        intact);
}

TEST(RecordStore, UnindexedTailRecordsAreRecovered)
{
    const ScratchDir dir("lostidx");
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0x1ULL, "{}", mkResult(1.0, 1));
    }
    // Simulate a writer killed between the record append and the index
    // append: a complete record lands in cache.bin with no index entry.
    const std::string resultJson = sim::toJson(mkResult(9.0, 9));
    {
        const auto base = std::filesystem::file_size(
            sweep::ResultCache::binFile(dir.path));
        std::string bin, idxStream;
        sweep::RecordStore::serialize(&bin, &idxStream, base, 0x2ULL,
                                      /*quarantined=*/false,
                                      /*wallSeconds=*/0.25, "{}",
                                      resultJson, "");
        std::ofstream out(sweep::ResultCache::binFile(dir.path),
                          std::ios::app | std::ios::binary);
        out.write(bin.data(), static_cast<std::streamsize>(bin.size()));
    }

    sweep::ResultCache cache(dir.path);
    EXPECT_EQ(cache.tailRecovered(), 1u);
    EXPECT_FALSE(cache.indexRebuilt());
    EXPECT_EQ(cache.entries(), 2u);
    const auto hit = cache.lookupEntry(0x2ULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->result.avgLatency, 9.0);
    EXPECT_EQ(hit->wallSeconds, 0.25);

    // The recovered index entry was persisted: the next open serves it
    // with no recovery work at all.
    sweep::ResultCache again(dir.path);
    EXPECT_EQ(again.tailRecovered(), 0u);
    EXPECT_EQ(again.entries(), 2u);
}

TEST(RecordStore, MissingIndexIsRebuiltFromRecords)
{
    const ScratchDir dir("rebuild");
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0x1ULL, "{}", mkResult(1.0, 1));
        writer.storeQuarantine(0x2ULL, "{}", mkResult(2.0, 0), "budget: x");
    }
    std::filesystem::remove(sweep::ResultCache::indexFile(dir.path));

    sweep::ResultCache cache(dir.path);
    EXPECT_TRUE(cache.indexRebuilt());
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.quarantinedEntries(), 1u);
    const auto hit = cache.lookupEntry(0x2ULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->quarantine, "budget: x");
}

TEST(RecordStore, GroupCommitBatchesWrites)
{
    const ScratchDir dir("groupcommit");
    sweep::ResultCache writer(dir.path);
    for (std::uint64_t k = 1; k <= 3; ++k)
        writer.store(k, "{}", mkResult(1.0, k));
    // Below the group-commit threshold: nothing on disk yet.
    EXPECT_EQ(sweep::ResultCache::stats(dir.path).records, 0u);

    ASSERT_TRUE(writer.flush());
    EXPECT_EQ(sweep::ResultCache::stats(dir.path).records, 3u);

    // Crossing the threshold commits without an explicit flush.
    for (std::uint64_t k = 10;
         k < 10 + sweep::ResultCache::kGroupCommitRecords; ++k)
        writer.store(k, "{}", mkResult(1.0, k));
    EXPECT_GE(sweep::ResultCache::stats(dir.path).records,
              sweep::ResultCache::kGroupCommitRecords);

    // Pending records are still served (from the session map) before
    // they hit disk, and the destructor flushes the remainder.
    writer.store(0x999ULL, "{}", mkResult(5.0, 5));
    ASSERT_TRUE(writer.lookup(0x999ULL));
}

TEST(RecordStore, WallClockIsStoredAndServedFromIndex)
{
    const ScratchDir dir("wall");
    {
        sweep::ResultCache writer(dir.path);
        writer.store(0xaULL, "{}", mkResult(1.0, 1), /*wallSeconds=*/1.5);
        writer.store(0xbULL, "{}", mkResult(2.0, 2));
    }
    sweep::ResultCache cache(dir.path);
    const auto wall = cache.measuredWallSeconds(0xaULL);
    ASSERT_TRUE(wall);
    EXPECT_EQ(*wall, 1.5);
    EXPECT_FALSE(cache.measuredWallSeconds(0xbULL)) << "unknown wall";
    const auto hit = cache.lookupEntry(0xaULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->wallSeconds, 1.5);
}

// ------------------------------------------------- migration + interchange

TEST(Migration, LegacyJsonlMigratesOnceKeepingKeys)
{
    const ScratchDir dir("migrate");
    std::filesystem::create_directories(dir.path);
    {
        std::ofstream out(sweep::ResultCache::cacheFile(dir.path));
        out << R"({"key":"00000000000000aa","config":{"x":1},)"
            << R"("result":{"avgLatency":3.5,"packetsMeasured":11}})"
            << '\n';
        out << "not json\n";
        out << R"({"key":"00000000000000bb",)"
            << R"("result":{"avgLatency":4.5},"quarantine":"budget: y"})"
            << '\n';
    }

    sweep::ResultCache cache(dir.path);
    EXPECT_EQ(cache.migratedEntries(), 2u);
    EXPECT_EQ(cache.corruptedLines(), 1u);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.quarantinedEntries(), 1u);
    const auto hit = cache.lookup(0xaaULL);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit->avgLatency, 3.5);
    EXPECT_EQ(hit->packetsMeasured, 11u);

    // The legacy file was renamed, not deleted, and the next open does
    // not migrate again.
    EXPECT_FALSE(std::filesystem::exists(
        sweep::ResultCache::cacheFile(dir.path)));
    EXPECT_TRUE(std::filesystem::exists(
        sweep::ResultCache::cacheFile(dir.path) + ".migrated"));
    sweep::ResultCache again(dir.path);
    EXPECT_EQ(again.migratedEntries(), 0u);
    EXPECT_EQ(again.entries(), 2u);
}

TEST(Migration, ExportRoundTripsByteIdentically)
{
    const ScratchDir dir("export");
    const auto jobs = specOrDie(kSpecText).expand();
    {
        sweep::ResultCache cache(dir.path);
        sweep::RunOptions opts;
        opts.threads = 2;
        opts.cache = &cache;
        const auto report = sweep::runSweep(jobs, opts);
        ASSERT_EQ(report.failed, 0u);
        cache.storeQuarantine(0xdeadULL, "{\"q\":true}", mkResult(0.0, 0),
                              "budget: aborted at cycle 50");
    }

    const std::string exp1 = dir.path + "/exp1.jsonl";
    std::size_t exported = 0;
    std::string err;
    ASSERT_TRUE(
        sweep::ResultCache::exportJsonl(dir.path, exp1, &exported, &err))
        << err;
    EXPECT_EQ(exported, jobs.size() + 1);

    // Import into a fresh dir and re-export: byte-identical, and every
    // exported line parses as the legacy format (key+config+result).
    const ScratchDir dir2("import");
    const auto imported = sweep::ResultCache::importJsonl(dir2.path, exp1);
    ASSERT_TRUE(imported);
    EXPECT_EQ(imported->imported, jobs.size() + 1);
    EXPECT_EQ(imported->corrupted, 0u);
    const std::string exp2 = dir2.path + "/exp2.jsonl";
    ASSERT_TRUE(sweep::ResultCache::exportJsonl(dir2.path, exp2));
    EXPECT_EQ(slurp(exp1), slurp(exp2));

    std::ifstream lines(exp1);
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        const auto doc = parseJson(line);
        ASSERT_TRUE(doc && doc->isObject()) << line;
        EXPECT_TRUE(doc->find("key"));
        EXPECT_TRUE(doc->find("result"));
        ++n;
    }
    EXPECT_EQ(n, jobs.size() + 1);

    // The imported cache serves simulation results identical to the
    // originals (keys are content addresses — they must survive every
    // format hop).
    sweep::ResultCache roundtripped(dir2.path);
    std::atomic<std::uint64_t> runs{0};
    sweep::RunOptions opts;
    opts.cache = &roundtripped;
    opts.runCounter = &runs;
    const auto report = sweep::runSweep(jobs, opts);
    EXPECT_EQ(runs.load(), 0u) << "import lost a cache key";
    EXPECT_EQ(report.cacheHits, jobs.size());
}

// ---------------------------------------------------- manifest + resume

TEST(Manifest, SaveLoadRoundTripsAndRejectsStale)
{
    const ScratchDir dir("manifest");
    std::filesystem::create_directories(dir.path);
    const auto jobs = specOrDie(kSpecText).expand();
    const auto key = sweep::SweepManifest::specKey(jobs);

    sweep::SweepManifest m(dir.path, key, jobs.size());
    m.markDone(1);
    m.markDone(5);
    m.markDone(5); // idempotent
    EXPECT_EQ(m.completed(), 2u);
    std::string err;
    ASSERT_TRUE(m.save(&err)) << err;

    sweep::SweepManifest loaded(dir.path, key, jobs.size());
    ASSERT_TRUE(loaded.load(&err)) << err;
    EXPECT_EQ(loaded.completed(), 2u);
    EXPECT_TRUE(loaded.isDone(1));
    EXPECT_TRUE(loaded.isDone(5));
    EXPECT_FALSE(loaded.isDone(0));

    // A different spec key is a different manifest file — nothing to
    // load; a matching file with a different job count is stale.
    sweep::SweepManifest otherSpec(dir.path, key ^ 1, jobs.size());
    EXPECT_FALSE(otherSpec.load(&err));
    sweep::SweepManifest otherCount(dir.path, key, jobs.size() + 1);
    EXPECT_FALSE(otherCount.load(&err));
    EXPECT_NE(err.find("different job count"), std::string::npos) << err;

    m.remove();
    EXPECT_FALSE(loaded.load(&err));
}

TEST(Manifest, ResumeSimulatesOnlyIncompleteJobs)
{
    const ScratchDir dir("resume");
    const auto jobs = specOrDie(kSpecText).expand();
    ASSERT_EQ(jobs.size(), 8u);

    // Reference output: a from-scratch, cache-less run.
    const auto reference = sweep::runSweep(jobs, {});

    // "Killed" sweep: the first 5 jobs completed and were cached, the
    // manifest checkpointed them, then the process died.
    const auto key = sweep::SweepManifest::specKey(jobs);
    {
        sweep::ResultCache cache(dir.path);
        sweep::RunOptions opts;
        opts.cache = &cache;
        const std::vector<sweep::SweepJob> firstFive(jobs.begin(),
                                                     jobs.begin() + 5);
        const auto partial = sweep::runSweep(firstFive, opts);
        ASSERT_EQ(partial.failed, 0u);
        sweep::SweepManifest m(dir.path, key, jobs.size());
        for (std::size_t i = 0; i < 5; ++i)
            m.markDone(i);
        std::string err;
        ASSERT_TRUE(m.save(&err)) << err;
    }

    // Resume: load the manifest, rerun the full sweep against the
    // cache. Exactly the 3 incomplete jobs simulate; the final JSONL is
    // byte-identical to the never-interrupted run.
    sweep::SweepManifest m(dir.path, key, jobs.size());
    std::string err;
    ASSERT_TRUE(m.load(&err)) << err;
    EXPECT_EQ(m.completed(), 5u);

    sweep::ResultCache cache(dir.path);
    std::atomic<std::uint64_t> runs{0};
    sweep::RunOptions opts;
    opts.cache = &cache;
    opts.runCounter = &runs;
    opts.manifest = &m;
    const auto resumed = sweep::runSweep(jobs, opts);
    EXPECT_EQ(runs.load(), 3u) << "resume re-simulated a completed job";
    EXPECT_EQ(resumed.cacheHits, 5u);
    EXPECT_EQ(m.completed(), jobs.size());
    EXPECT_EQ(resultsJsonl(jobs, resumed), resultsJsonl(jobs, reference));

    // The runner checkpointed the finished manifest to disk.
    sweep::SweepManifest final_(dir.path, key, jobs.size());
    ASSERT_TRUE(final_.load(&err)) << err;
    EXPECT_EQ(final_.completed(), jobs.size());
}

// ------------------------------------------------- cost-aware scheduling

TEST(CostOrder, IsADeterministicPermutation)
{
    const auto jobs = specOrDie(kSpecText).expand();
    const auto order = sweep::costOrder(jobs, nullptr);
    ASSERT_EQ(order.size(), jobs.size());
    std::set<std::size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), jobs.size());
    EXPECT_EQ(order, sweep::costOrder(jobs, nullptr));

    // Same node count and cycle budget everywhere, so the prior is
    // driven by injection rate: the highest-rate job runs first.
    double bestRate = 0.0;
    for (const auto &job : jobs)
        bestRate = std::max(bestRate, job.cfg.injectionRate);
    EXPECT_EQ(jobs[order.front()].cfg.injectionRate, bestRate);
}

TEST(CostOrder, MeasuredWallClockOverridesThePrior)
{
    const ScratchDir dir("costwall");
    const auto jobs = specOrDie(kSpecText).expand();
    sweep::ResultCache cache(dir.path);
    // Measure every job, handing the job the prior ranks last the
    // largest wall-clock: with measurements on file the prior is moot
    // and the measured order must hold, cheapest-prior job first.
    const auto prior = sweep::costOrder(jobs, nullptr);
    const std::size_t cheapest = prior.back();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        cache.store(jobs[i].key, jobs[i].canonical, mkResult(1.0, 1),
                    /*wallSeconds=*/i == cheapest ? 100.0 : 1.0 + i);
    const auto order = sweep::costOrder(jobs, &cache);
    EXPECT_EQ(order.front(), cheapest);
}

TEST(CostOrder, SweepsAreBitIdenticalAcrossOrderAndThreads)
{
    const auto jobs = specOrDie(kSpecText).expand();

    sweep::RunOptions spec1;
    spec1.threads = 1;
    spec1.order = sweep::JobOrder::Spec;
    const auto base = sweep::runSweep(jobs, spec1);

    for (const int threads : {1, 4}) {
        sweep::RunOptions cost;
        cost.threads = threads;
        cost.order = sweep::JobOrder::CostDescending;
        const auto r = sweep::runSweep(jobs, cost);
        EXPECT_EQ(resultsJsonl(jobs, r), resultsJsonl(jobs, base))
            << "cost-ordered sweep diverged at " << threads
            << " thread(s)";
    }
}

TEST(ThreadPool, OrderedBatchRunsEveryIndexOnce)
{
    sweep::ThreadPool pool(3);
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < 100; ++i)
        order.push_back(99 - i);
    for (int round = 0; round < 3; ++round) {
        std::vector<std::atomic<int>> hits(100);
        pool.parallelForOrdered(order, [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }

    // Exceptions propagate and the pool survives, same as parallelFor.
    EXPECT_THROW(pool.parallelForOrdered(order,
                                         [&](std::size_t i) {
                                             if (i == 42)
                                                 throw std::runtime_error(
                                                     "x");
                                         }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.parallelFor(10, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
}

// -------------------------------------------------------------- refine

TEST(Refine, FindsTheKneeDeterministically)
{
    const ScratchDir dir("refine");
    const auto spec = specOrDie(R"({
      "name": "knee",
      "topology": {"type": "mesh", "dims": [4, 4], "vcs": [2, 2]},
      "routers": ["xy"],
      "patterns": ["uniform"],
      "rates": [0.05, 0.95],
      "sim": {"seed": 7, "warmupCycles": 100, "measureCycles": 300,
              "drainCycles": 3000, "watchdogCycles": 1500}
    })");

    sweep::ResultCache cache(dir.path);
    sweep::RefineOptions opts;
    opts.tolerance = 0.02;
    opts.run.cache = &cache;
    const auto a = sweep::refineSweep(spec, opts);
    ASSERT_EQ(a.curves.size(), 1u);
    const auto &c = a.curves[0];
    ASSERT_FALSE(c.failed) << c.error;
    ASSERT_FALSE(c.saturatedAtLo);
    ASSERT_FALSE(c.unsaturatedAtHi);
    EXPECT_GT(c.knee, 0.05);
    EXPECT_LT(c.knee, 0.95);
    EXPECT_LE(c.hi - c.lo, opts.tolerance);
    EXPECT_GT(c.points, 2);
    EXPECT_GT(c.threshold, 0.0);

    // Rerun: identical bracket and knee, and every point comes from the
    // cache (bisection depends only on measured verdicts).
    const auto b = sweep::refineSweep(spec, opts);
    ASSERT_EQ(b.curves.size(), 1u);
    EXPECT_EQ(b.curves[0].knee, c.knee);
    EXPECT_EQ(b.curves[0].lo, c.lo);
    EXPECT_EQ(b.curves[0].hi, c.hi);
    EXPECT_EQ(b.curves[0].points, c.points);
    EXPECT_EQ(b.simulated, 0u) << "refine rerun missed the cache";

    // Refine points are regular grid jobs: a plain sweep at the same
    // rate hits the refine-populated cache.
    auto gridSpec = spec;
    gridSpec.rates = {0.05};
    const auto gridJobs = gridSpec.expand();
    std::atomic<std::uint64_t> runs{0};
    sweep::RunOptions runOpts;
    runOpts.cache = &cache;
    runOpts.runCounter = &runs;
    const auto grid = sweep::runSweep(gridJobs, runOpts);
    EXPECT_EQ(runs.load(), 0u) << "refine point used a different key";
    ASSERT_EQ(grid.outcomes.size(), 1u);
    EXPECT_TRUE(grid.outcomes[0].fromCache);
}

TEST(Refine, FlagsCurvesSaturatedAtTheLowEnd)
{
    const auto spec = specOrDie(R"({
      "name": "lowsat",
      "topology": {"type": "mesh", "dims": [4, 4], "vcs": [2, 2]},
      "routers": ["xy"],
      "patterns": ["uniform"],
      "rates": [0.9, 0.95],
      "sim": {"seed": 7, "warmupCycles": 100, "measureCycles": 300,
              "drainCycles": 3000, "watchdogCycles": 1500}
    })");
    sweep::RefineOptions opts;
    // An absolute threshold below any achievable latency: saturated
    // everywhere, including the low endpoint.
    opts.latencyThreshold = 0.5;
    const auto report = sweep::refineSweep(spec, opts);
    ASSERT_EQ(report.curves.size(), 1u);
    EXPECT_TRUE(report.curves[0].saturatedAtLo);
    EXPECT_EQ(report.curves[0].knee, 0.9);
}

// ------------------------------------------------------- blocked stat

TEST(SweepReport, CacheBlockedTimeIsAccounted)
{
    const ScratchDir dir("blocked");
    const auto jobs = specOrDie(kSpecText).expand();
    sweep::ResultCache cache(dir.path);
    sweep::RunOptions opts;
    opts.cache = &cache;
    const auto report = sweep::runSweep(jobs, opts);
    // Storing through the cache takes nonzero wall-clock; the stat must
    // see it and stay a small fraction of the sweep.
    EXPECT_GT(report.cacheBlockedSeconds, 0.0);
    EXPECT_LT(report.cacheBlockedSeconds, report.elapsedSeconds);
    EXPECT_GT(cache.blockedSeconds(), 0.0);
}

} // namespace
