/**
 * @file
 * Unit tests for Algorithm 2 (derivation by circular shifting) and the
 * scheme-space generators behind Table 1.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/catalog.hh"
#include "core/derivation.hh"

namespace ebda::core {
namespace {

TEST(Derivation, ShiftingProducesBothMaxAdaptive2dForms)
{
    // 2D single VC, X leading: rotating Set2 yields {X* Y+}->{Y-} and
    // {X* Y-}->{Y+}.
    const auto schemes = deriveByShifting(makeSets({1, 1}));
    std::set<std::string> keys;
    for (const auto &s : schemes) {
        EXPECT_TRUE(s.validate().ok);
        keys.insert(s.toString(false));
    }
    EXPECT_TRUE(keys.count("{X+ X- Y+} -> {Y-}"));
    EXPECT_TRUE(keys.count("{X+ X- Y-} -> {Y+}"));
}

TEST(Derivation, DedupesIdenticalSchemes)
{
    auto schemes = deriveByShifting(makeSets({1, 1}));
    std::set<std::string> keys;
    for (const auto &s : schemes)
        keys.insert(s.canonicalKey());
    EXPECT_EQ(keys.size(), schemes.size());
}

TEST(Derivation, PermuteTransitionOrders)
{
    DerivationOptions opts;
    opts.permuteTransitionOrders = true;
    const auto schemes = deriveByShifting(makeSets({1, 1}), opts);
    std::set<std::string> keys;
    for (const auto &s : schemes)
        keys.insert(s.toString(false));
    // Reversed transitions appear: the Table 1 third/fourth-row entries.
    EXPECT_TRUE(keys.count("{Y-} -> {X+ X- Y+}"));
    EXPECT_TRUE(keys.count("{Y+} -> {X+ X- Y-}"));
}

TEST(Derivation, DeriveAll2dContainsTwelveTable1Options)
{
    // Both arrangements x both shifts x both orders (8) plus the four
    // exceptional schemes = the 12 partitioning options of Table 1.
    DerivationOptions opts;
    opts.permuteTransitionOrders = true;
    const auto schemes = deriveAll({1, 1}, opts);

    const std::set<std::string> table1 = {
        "{X+ X- Y+} -> {Y-}", "{Y+ Y- X+} -> {X-}", "{X+ Y+} -> {X- Y-}",
        "{X+ X- Y-} -> {Y+}", "{Y+ Y- X-} -> {X+}", "{X+ Y-} -> {X- Y+}",
        "{Y-} -> {X+ X- Y+}", "{X-} -> {Y+ Y- X+}", "{X- Y-} -> {X+ Y+}",
        "{Y+} -> {X+ X- Y-}", "{X+} -> {Y+ Y- X-}", "{X- Y+} -> {X+ Y-}",
    };
    std::set<std::string> keys;
    for (const auto &s : schemes)
        keys.insert(s.toString(false));
    for (const auto &expected : table1)
        EXPECT_TRUE(keys.count(expected)) << "missing option " << expected;
}

TEST(Derivation, DeriveAllRespectsCap)
{
    DerivationOptions opts;
    opts.maxSchemes = 3;
    const auto schemes = deriveAll({1, 1}, opts);
    EXPECT_LE(schemes.size(), 3u);
}

TEST(Derivation, ReverseOrder)
{
    const auto scheme = schemeNorthLast();
    const auto rev = reverseOrder(scheme);
    ASSERT_EQ(rev.size(), 2u);
    EXPECT_EQ(rev[0].toString(false), "{Y+}");
    EXPECT_EQ(rev[1].toString(false), "{X+ X- Y-}");
}

TEST(Derivation, AllOrdersCountsFactorial)
{
    const auto scheme = schemeFig6P1(); // four singleton partitions
    const auto orders = allOrders(scheme);
    EXPECT_EQ(orders.size(), 24u);
    std::set<std::string> keys;
    for (const auto &s : orders)
        keys.insert(s.canonicalKey());
    EXPECT_EQ(keys.size(), 24u);
}

TEST(Derivation, AllOrdersCaps)
{
    const auto orders = allOrders(schemeFig6P1(), 10);
    EXPECT_EQ(orders.size(), 10u);
}

TEST(Derivation, DedupeKeepsFirstSeen)
{
    std::vector<PartitionScheme> schemes;
    schemes.push_back(schemeNorthLast());
    schemes.push_back(schemeFig6P3());
    schemes.push_back(schemeNorthLast());
    dedupeSchemes(schemes);
    ASSERT_EQ(schemes.size(), 2u);
    EXPECT_EQ(schemes[0].canonicalKey(), schemeNorthLast().canonicalKey());
    EXPECT_EQ(schemes[1].canonicalKey(), schemeFig6P3().canonicalKey());
}

TEST(Derivation, MultiVcDerivationAllValid)
{
    // VCs (2, 2): the derivation space is larger; every emitted scheme
    // must validate and cover all 8 channels.
    const auto schemes = deriveAll({2, 2});
    EXPECT_GE(schemes.size(), 2u);
    for (const auto &s : schemes) {
        EXPECT_TRUE(s.validate().ok) << s.toString();
        EXPECT_EQ(s.numClasses(), 8u) << s.toString();
    }
}

TEST(Derivation, ThreeDimensionalDerivationValid)
{
    const auto schemes = deriveAll({2, 2, 4});
    EXPECT_FALSE(schemes.empty());
    for (const auto &s : schemes) {
        EXPECT_TRUE(s.validate().ok) << s.toString();
        EXPECT_EQ(s.numClasses(), 16u);
    }
}

} // namespace
} // namespace ebda::core
