/**
 * @file
 * End-to-end acceptance for the new fabrics: dragonfly(4,2,2) and
 * fullMesh(8) declared via BOTH the factory and the ASCII-map DSL must
 * agree structurally, satisfy both deadlock checkers under their
 * routing engines, and complete a watchdog-clean simulation run.
 */

#include <gtest/gtest.h>

#include <string>

#include "cdg/mm_check.hh"
#include "cdg/relation_cdg.hh"
#include "routing/dragonfly.hh"
#include "routing/fullmesh.hh"
#include "sim/simulator.hh"
#include "topo/ascii_map.hh"
#include "topo/network.hh"

namespace ebda {
namespace {

/** Base-36 single-character node name: ids 0..35 -> '0'..'9','A'..'Z'
 *  (uppercase, so 'x' never appears and ASCII order matches id order). */
char
base36(topo::NodeId n)
{
    return n < 10 ? static_cast<char>('0' + n)
                  : static_cast<char>('A' + (n - 10));
}

/**
 * Renders any network with <= 36 nodes as an ASCII map: one picture row
 * naming every node, then one `S>D:V` edge token per directed link.
 * Round-tripping through the DSL must reproduce the structure.
 */
std::string
asciiMapFor(const topo::Network &net)
{
    std::string map;
    for (topo::NodeId n = 0; n < net.numNodes(); ++n) {
        if (n)
            map += ' ';
        map += base36(n);
    }
    map += '\n';
    for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
        const topo::Link &lk = net.link(l);
        map += "+ ";
        map += base36(lk.src);
        map += '>';
        map += base36(lk.dst);
        map += ':';
        map += std::to_string(net.vcsOnLink(l));
        map += '\n';
    }
    return map;
}

void
expectStructurallyEqual(const topo::Network &a, const topo::Network &b)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    EXPECT_EQ(a.numLinks(), b.numLinks());
    EXPECT_EQ(a.numChannels(), b.numChannels());
    for (topo::NodeId u = 0; u < a.numNodes(); ++u)
        for (topo::NodeId v = 0; v < a.numNodes(); ++v) {
            const auto la = a.linkBetween(u, v);
            const auto lb = b.linkBetween(u, v);
            ASSERT_EQ(la.has_value(), lb.has_value())
                << "link " << u << "->" << v;
            if (la)
                EXPECT_EQ(a.vcsOnLink(*la), b.vcsOnLink(*lb))
                    << "link " << u << "->" << v;
        }
}

void
expectDeadlockFreeAndSimClean(const topo::Network &net,
                              const cdg::RoutingRelation &r)
{
    SCOPED_TRACE(r.name());
    EXPECT_TRUE(cdg::checkDeadlockFree(r).deadlockFree);
    EXPECT_TRUE(cdg::checkMendlovicMatias(r).deadlockFree);

    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    cfg.injectionRate = 0.05;
    const auto result = sim::runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 20u);
}

TEST(DragonflyAcceptance, FactoryNetwork)
{
    const auto net = topo::Network::dragonfly(4, 2, 2);
    const routing::DragonflyMinRouting r(net, 4);
    expectDeadlockFreeAndSimClean(net, r);
}

TEST(DragonflyAcceptance, AsciiDeclaredNetwork)
{
    const auto factory = topo::Network::dragonfly(4, 2, 2);
    const auto parsed = topo::parseAsciiMap(asciiMapFor(factory));
    expectStructurallyEqual(parsed.network, factory);

    // The structural engine accepts the ASCII-declared fabric directly.
    const routing::DragonflyMinRouting r(parsed.network, 4);
    expectDeadlockFreeAndSimClean(parsed.network, r);
}

TEST(FullMeshAcceptance, FactoryNetwork)
{
    const auto net = topo::Network::fullMesh(8);
    const routing::FullMeshRouting r(net);
    expectDeadlockFreeAndSimClean(net, r);
}

TEST(FullMeshAcceptance, AsciiDeclaredNetwork)
{
    // Hand-drawn: eight isolated picture nodes plus the 28 undirected
    // pairs of K8 as edge-list tokens.
    std::string map = "0 1 2 3 4 5 6 7\n";
    for (int i = 0; i < 8; ++i) {
        map += '+';
        for (int j = i + 1; j < 8; ++j) {
            map += ' ';
            map += base36(i);
            map += '-';
            map += base36(j);
        }
        map += '\n';
    }
    // Row 7 contributes no tokens; a bare '+' line is legal.
    const auto parsed = topo::parseAsciiMap(map);
    expectStructurallyEqual(parsed.network, topo::Network::fullMesh(8));

    const routing::FullMeshRouting r(parsed.network);
    expectDeadlockFreeAndSimClean(parsed.network, r);
}

} // namespace
} // namespace ebda
