/**
 * @file
 * Tests for the switching techniques (Assumption 1: the theorems cover
 * wormhole, virtual cut-through and store-and-forward) and the
 * channel-load statistics.
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace ebda::sim {
namespace {

SimConfig
baseConfig(SwitchingMode mode)
{
    SimConfig cfg;
    cfg.switching = mode;
    cfg.vcDepth = 8;
    cfg.packetLength = 4;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 400;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 30000;
    cfg.seed = 21;
    return cfg;
}

class SwitchingModes : public ::testing::TestWithParam<SwitchingMode>
{
};

TEST_P(SwitchingModes, EbDaDeliversDeadlockFree)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    const auto result = runSimulation(net, r, gen,
                                      baseConfig(GetParam()));
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 30u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SwitchingModes,
    ::testing::Values(SwitchingMode::Wormhole,
                      SwitchingMode::VirtualCutThrough,
                      SwitchingMode::StoreAndForward));

TEST(Switching, LatencyOrderingAtLowLoad)
{
    // Per-hop behaviour: SAF serialises the whole packet at every hop,
    // VCT and wormhole cut through — so zero-load latency must be
    // clearly higher for SAF and (weakly) lowest for wormhole.
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    const auto wh =
        runSimulation(net, xy, gen, baseConfig(SwitchingMode::Wormhole));
    const auto vct = runSimulation(
        net, xy, gen, baseConfig(SwitchingMode::VirtualCutThrough));
    const auto saf = runSimulation(
        net, xy, gen, baseConfig(SwitchingMode::StoreAndForward));

    EXPECT_FALSE(wh.deadlocked);
    EXPECT_FALSE(vct.deadlocked);
    EXPECT_FALSE(saf.deadlocked);
    EXPECT_GT(saf.avgLatency, vct.avgLatency + 2.0);
    EXPECT_LE(wh.avgLatency, vct.avgLatency + 1.0);
}

TEST(Switching, SafRequiresDeepBuffers)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    auto cfg = baseConfig(SwitchingMode::StoreAndForward);
    cfg.vcDepth = 2; // < packetLength
    EXPECT_DEATH(Simulator(net, xy, gen, cfg), "vcDepth");
}

TEST(LoadStats, PopulatedAndConsistent)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    const auto result =
        runSimulation(net, xy, gen, baseConfig(SwitchingMode::Wormhole));
    EXPECT_GT(result.channelLoadMean, 0.0);
    EXPECT_GE(result.channelLoadCv, 0.0);
    EXPECT_GE(result.channelLoadMaxRatio, 1.0);
    EXPECT_GE(result.channelsUnused, 0.0);
    EXPECT_LT(result.channelsUnused, 1.0);
}

TEST(LoadStats, AdaptiveSpreadsBetterThanDuatoEscapeDesign)
{
    // The Section 2 claim: EbDa uses all channels simultaneously,
    // escape-channel designs leave the escape VCs underused — visible
    // as a higher coefficient of variation / more unused channels.
    const auto net = topo::Network::mesh({6, 6}, {2, 2});
    const routing::EbDaRouting ebda(net, core::regionScheme(2));
    const routing::DuatoFullyAdaptive duato(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = baseConfig(SwitchingMode::Wormhole);
    cfg.injectionRate = 0.25;
    const auto r_ebda = runSimulation(net, ebda, gen, cfg);
    cfg.atomicVcAllocation = true;
    const auto r_duato = runSimulation(net, duato, gen, cfg);

    EXPECT_FALSE(r_ebda.deadlocked);
    EXPECT_FALSE(r_duato.deadlocked);
    EXPECT_LT(r_ebda.channelLoadCv, r_duato.channelLoadCv + 0.35);
}

} // namespace
} // namespace ebda::sim
