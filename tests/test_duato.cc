/**
 * @file
 * Unit tests for the Duato-style escape-channel verification (Section 2
 * comparison theory): the fully adaptive relation with a DOR escape VC
 * passes the Duato check while failing Dally's, and mutilated variants
 * fail the appropriate Duato condition.
 */

#include <gtest/gtest.h>

#include "cdg/duato_check.hh"
#include "cdg/relation_cdg.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "core/catalog.hh"

namespace ebda::cdg {
namespace {

using core::Sign;

TEST(DuatoCheck, FullyAdaptiveWithEscapePasses)
{
    const auto net = topo::Network::mesh({5, 5}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    const auto report = checkDuatoDeadlockFree(
        r, [&](topo::ChannelId c) { return r.isEscape(c); });
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.escapeAcyclic);
    EXPECT_TRUE(report.escapeConnected);
    EXPECT_TRUE(report.escapeAlwaysAvailable);
    // One escape VC per link.
    EXPECT_EQ(report.numEscapeChannels, net.numLinks());

    // The contrast of Section 2: Dally's criterion rejects the same
    // relation because the adaptive channels form cycles.
    EXPECT_FALSE(checkDeadlockFree(r).deadlockFree);
}

TEST(DuatoCheck, WrongEscapeSetFailsAcyclicity)
{
    // Declaring the *adaptive* VC as the escape set: the escape
    // subrelation is then cyclic fully adaptive routing.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    const auto report = checkDuatoDeadlockFree(
        r, [&](topo::ChannelId c) { return !r.isEscape(c); });
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.escapeAcyclic);
}

TEST(DuatoCheck, EmptyEscapeSetFails)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    const auto report = checkDuatoDeadlockFree(
        r, [](topo::ChannelId) { return false; });
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.escapeConnected);
    EXPECT_FALSE(report.escapeAlwaysAvailable);
    EXPECT_EQ(report.numEscapeChannels, 0u);
}

TEST(DuatoCheck, PartialEscapeCoverageFailsAvailability)
{
    // Escape only along X: Y-bound packets may reach states with no
    // escape candidate.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    const auto report = checkDuatoDeadlockFree(
        r, [&](topo::ChannelId c) {
            return r.isEscape(c)
                && net.link(net.linkOf(c)).dim == 0;
        });
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.escapeConnected);
}

TEST(DuatoCheck, EbDaNeedsNoEscapeChannels)
{
    // An EbDa relation passes Dally directly; run the Duato check with
    // the whole channel set as "escape" — it reduces to Dally's check
    // plus connectivity, and passes, illustrating "no escape channel is
    // needed".
    const auto net = topo::Network::mesh({5, 5}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const auto report = checkDuatoDeadlockFree(
        r, [](topo::ChannelId) { return true; });
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

} // namespace
} // namespace ebda::cdg
