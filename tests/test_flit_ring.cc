/**
 * @file
 * Property tests for the arena containers: FlitRing (the per-VC view
 * into the fabric's flit slab, sim/flit.hh) against a std::deque
 * reference model, and RingQueue (the source-queue container,
 * util/ring_queue.hh) against the same model. Random push/pop/erase
 * sequences drive both containers through capacity wraparound — the
 * regime where head+count exceeds the slab width and every access has
 * to fold the index — and assert element-for-element agreement.
 */

#include <cstdint>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "sim/flit.hh"
#include "util/ring_queue.hh"
#include "util/random.hh"

namespace ebda::sim {
namespace {

Flit
mkFlit(std::uint32_t pkt, bool head = false, bool tail = false)
{
    Flit f;
    f.pkt = pkt;
    f.head = head;
    f.tail = tail;
    f.arrival = pkt * 7 + 1;
    return f;
}

void
expectEqual(const FlitRing &ring, const std::deque<Flit> &model)
{
    ASSERT_EQ(ring.size(), model.size());
    ASSERT_EQ(ring.empty(), model.empty());
    for (std::size_t k = 0; k < model.size(); ++k) {
        EXPECT_EQ(ring[k].pkt, model[k].pkt) << "index " << k;
        EXPECT_EQ(ring[k].head, model[k].head) << "index " << k;
        EXPECT_EQ(ring[k].tail, model[k].tail) << "index " << k;
        EXPECT_EQ(ring[k].arrival, model[k].arrival) << "index " << k;
    }
    if (!model.empty())
        EXPECT_EQ(ring.front().pkt, model.front().pkt);
    // Iterator order must agree with indexed order.
    std::size_t k = 0;
    for (const Flit &f : ring) {
        EXPECT_EQ(f.pkt, model[k].pkt) << "iterator index " << k;
        ++k;
    }
    EXPECT_EQ(k, model.size());
}

TEST(FlitRing, WrapsAroundCapacityBoundary)
{
    constexpr std::uint32_t kCap = 4;
    std::vector<Flit> slab(kCap);
    FlitRing ring;
    ring.bind(slab.data(), kCap);

    // Walk the head all the way around the slab: after each
    // push/pop pair the head advances one slot, so 3 * kCap rounds
    // cross the wrap boundary several times with the ring non-empty.
    std::deque<Flit> model;
    for (std::uint32_t i = 0; i < 3 * kCap; ++i) {
        ring.push_back(mkFlit(i));
        model.push_back(mkFlit(i));
        ring.push_back(mkFlit(i + 100));
        model.push_back(mkFlit(i + 100));
        expectEqual(ring, model);
        ring.pop_front();
        model.pop_front();
        ring.pop_front();
        model.pop_front();
        expectEqual(ring, model);
    }
}

TEST(FlitRing, RandomOpsMatchDequeModel)
{
    constexpr std::uint32_t kCap = 8;
    std::vector<Flit> slab(kCap);
    FlitRing ring;
    ring.bind(slab.data(), kCap);
    std::deque<Flit> model;

    Rng rng(0xF117);
    std::uint32_t next = 0;
    for (int step = 0; step < 20000; ++step) {
        const auto op = rng.next() % 4;
        if (op <= 1) { // push (biased so the ring stays loaded)
            if (model.size() < kCap) {
                const Flit f =
                    mkFlit(next, next % 4 == 0, next % 4 == 3);
                ++next;
                ring.push_back(f);
                model.push_back(f);
            }
        } else if (op == 2) {
            if (!model.empty()) {
                ring.pop_front();
                model.pop_front();
            }
        } else {
            if (!model.empty()) {
                ring.pop_back();
                model.pop_back();
            }
        }
        ASSERT_EQ(ring.size(), model.size());
        if (!model.empty()) {
            ASSERT_EQ(ring.front().pkt, model.front().pkt);
            ASSERT_EQ(ring[model.size() - 1].pkt,
                      model.back().pkt);
        }
        if (step % 97 == 0)
            expectEqual(ring, model);
    }
    expectEqual(ring, model);
}

TEST(FlitRing, EraseIfUnderWrapPreservesOrder)
{
    constexpr std::uint32_t kCap = 6;
    std::vector<Flit> slab(kCap);
    FlitRing ring;
    ring.bind(slab.data(), kCap);
    std::deque<Flit> model;

    Rng rng(0xE6A5E);
    std::uint32_t next = 0;
    for (int round = 0; round < 4000; ++round) {
        // Load to a random fill, advancing the head so erase runs
        // with the live span wrapped across the slab end.
        const std::size_t fill = 1 + rng.next() % kCap;
        while (model.size() < fill) {
            const Flit f = mkFlit(next++);
            ring.push_back(f);
            model.push_back(f);
        }
        // The purge predicate the fault injector uses: kill every
        // flit of a victim packet set (here: pkt % 3 == victim).
        const std::uint32_t victim = rng.next() % 3;
        const auto pred = [victim](const Flit &f) {
            return f.pkt % 3 == victim;
        };
        const std::size_t removed = ring.eraseIf(pred);
        std::size_t modelRemoved = 0;
        for (auto it = model.begin(); it != model.end();) {
            if (pred(*it)) {
                it = model.erase(it);
                ++modelRemoved;
            } else {
                ++it;
            }
        }
        ASSERT_EQ(removed, modelRemoved) << "round " << round;
        expectEqual(ring, model);
        // Drain a random amount to walk the head forward.
        const std::size_t drop =
            model.empty() ? 0 : rng.next() % (model.size() + 1);
        for (std::size_t i = 0; i < drop; ++i) {
            ring.pop_front();
            model.pop_front();
        }
    }
}

TEST(RingQueue, RandomOpsMatchDequeModel)
{
    RingQueue<std::uint32_t> queue;
    std::deque<std::uint32_t> model;

    Rng rng(0x51E9E);
    std::uint32_t next = 0;
    for (int step = 0; step < 30000; ++step) {
        const auto op = rng.next() % 5;
        if (op <= 2) { // push-biased: forces regrowth mid-wrap
            queue.push_back(next);
            model.push_back(next);
            ++next;
        } else if (op == 3) {
            if (!model.empty()) {
                queue.pop_front();
                model.pop_front();
            }
        } else if (!model.empty()) {
            // In-place erase of a residue class, as
            // dropDeadQueuedPackets does for dead destinations.
            const std::uint32_t victim = rng.next() % 7;
            queue.eraseIf([victim](std::uint32_t v) {
                return v % 7 == victim;
            });
            for (auto it = model.begin(); it != model.end();) {
                if (*it % 7 == victim)
                    it = model.erase(it);
                else
                    ++it;
            }
        }
        ASSERT_EQ(queue.size(), model.size());
        for (std::size_t k = 0; k < model.size(); ++k)
            ASSERT_EQ(queue[k], model[k]) << "step " << step;
    }
}

TEST(RingQueue, ReserveThenSteadyChurnKeepsCapacity)
{
    RingQueue<std::uint32_t> queue;
    queue.reserve(8);
    const std::size_t cap0 = queue.capacity();
    ASSERT_GE(cap0, 8u);
    // Bounded churn below the reserved capacity must never regrow —
    // this is the steady-state no-allocation contract the simulator's
    // source queues rely on.
    for (std::uint32_t i = 0; i < 1000; ++i) {
        queue.push_back(i);
        queue.push_back(i + 1);
        queue.pop_front();
        queue.pop_front();
    }
    EXPECT_EQ(queue.capacity(), cap0);
    EXPECT_TRUE(queue.empty());
}

} // namespace
} // namespace ebda::sim
