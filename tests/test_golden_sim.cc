/**
 * @file
 * Golden-seed bit-identity tests for the decomposed simulator.
 *
 * The per-router pipeline + active-set refactor claims *bit-identical*
 * results to the original monolithic simulator loop: the active sets
 * only skip provable no-ops and visit members in the same rotated
 * order, so every arbitration decision, RNG draw and statistic must
 * come out the same. The expected values below were captured from the
 * pre-refactor simulator (printed with 17 significant digits, which
 * round-trips every IEEE-754 double exactly) across all four selection
 * policies and all three switching modes on a 4x4 mesh and a 4-ary
 * 2-cube. Any divergence — even in the last ulp — is a scheduling or
 * arbitration regression, not noise.
 *
 * Also here: the forced-deadlock forensics test, pinning that the
 * watchdog's frozen-fabric walk finds a concrete wait-for cycle and
 * that every one of its edges is predicted by the Dally relation-CDG.
 */

#include <gtest/gtest.h>

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "core/torus.hh"
#include "graph/digraph.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace {

using namespace ebda;

/** The 16 pre-refactor SimResult fields, in declaration order. */
struct GoldenResult
{
    double avgLatency;
    std::uint64_t p50Latency;
    std::uint64_t p99Latency;
    std::uint64_t maxLatency;
    double avgHops;
    double acceptedRate;
    double offeredRate;
    std::uint64_t packetsMeasured;
    std::uint64_t packetsEjected;
    bool deadlocked;
    bool drained;
    std::uint64_t cycles;
    double channelLoadMean;
    double channelLoadCv;
    double channelLoadMaxRatio;
    double channelsUnused;
};

struct GoldenRow
{
    /** 0 = mesh{4,4} vcs{1,2} fig7b; 1 = torus{4,4} vcs{2,2}
     *  torusAdaptiveScheme2d. */
    int topo;
    sim::SelectionPolicy selection;
    sim::SwitchingMode switching;
    GoldenResult expect;
};

// Captured from the pre-refactor monolithic simulator (seed 2017,
// rate 0.15, warmup 300, measure 1500, drain 20000, watchdog 2000,
// uniform traffic). %.17g print, so doubles compare with ==.
const GoldenRow kGolden[] = {
    {0, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::Wormhole,
     {7.9579545454545473, 7, 15, 20, 2.7170454545454534, 0.14679166666666665, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.31944444444446, 0.50328741828825763, 2.1103557870574732, 0}},
    {0, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::VirtualCutThrough,
     {8.017045454545455, 8, 16, 21, 2.7170454545454539, 0.14679166666666665, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.31944444444451, 0.50163836676899809, 2.1103557870574723, 0}},
    {0, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::StoreAndForward,
     {12.834090909090916, 12, 27, 37, 2.7170454545454525, 0.14687500000000001, 0.14504977876106195, 880, 1044, false, true, 1807,
      157.40277777777786, 0.47778823452276042, 2.1092385070149113, 0}},
    {0, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::Wormhole,
     {8.0193181818181802, 7, 16, 25, 2.7170454545454561, 0.14683333333333334, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.3194444444444, 0.4602575331856632, 2.1612077337335576, 0}},
    {0, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::VirtualCutThrough,
     {8.1659090909090999, 8, 17, 23, 2.7170454545454565, 0.14679166666666665, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.3194444444444, 0.45898966390002127, 2.1612077337335576, 0}},
    {0, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::StoreAndForward,
     {13.118181818181814, 13, 29, 34, 2.7170454545454552, 0.14704166666666665, 0.14516574585635358, 880, 1044, false, true, 1809,
      157.58333333333337, 0.44508413844301115, 2.1829719725013215, 0}},
    {0, sim::SelectionPolicy::Random, sim::SwitchingMode::Wormhole,
     {8.152099886492616, 8, 16, 21, 2.7026106696935255, 0.14741666666666667, 0.14591385974599669, 881, 1050, false, true, 1810,
      157.54166666666669, 0.4504218096388144, 2.3612800846336945, 0}},
    {0, sim::SelectionPolicy::Random, sim::SwitchingMode::VirtualCutThrough,
     {8.2408675799086701, 8, 19, 23, 2.7009132420091326, 0.14649999999999999, 0.14479512735326688, 876, 1043, false, true, 1805,
      155.81944444444443, 0.469268931091818, 2.3296193956680633, 0}},
    {0, sim::SelectionPolicy::Random, sim::SwitchingMode::StoreAndForward,
     {13.098285714285714, 13, 27, 31, 2.7097142857142855, 0.14574999999999999, 0.14375684556407448, 875, 1043, false, true, 1825,
      157.08333333333334, 0.45928940597916473, 2.3681697612732093, 0}},
    {0, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::Wormhole,
     {7.9488636363636385, 7, 16, 21, 2.7170454545454543, 0.14679166666666665, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.31944444444446, 0.51883240819918575, 2.1357817603955151, 0}},
    {0, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::VirtualCutThrough,
     {8.0227272727272734, 8, 15, 22, 2.7170454545454521, 0.14679166666666665, 0.14487534626038781, 880, 1044, false, true, 1804,
      157.31944444444446, 0.51969163209609259, 2.1357817603955151, 0}},
    {0, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::StoreAndForward,
     {12.759090909090904, 12, 27, 34, 2.7170454545454534, 0.14691666666666667, 0.14504977876106195, 880, 1044, false, true, 1807,
      157.40277777777777, 0.50327951055712372, 2.0584134827494927, 0}},
    {1, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::Wormhole,
     {7.235227272727272, 7, 14, 16, 2.198863636363634, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.6171875, 0.90856803869263392, 4.2447910985055088, 0.0234375}},
    {1, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::VirtualCutThrough,
     {7.2386363636363651, 7, 14, 16, 2.198863636363634, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.6171875, 0.90856803869263392, 4.2447910985055088, 0.0234375}},
    {1, sim::SelectionPolicy::MaxCredits, sim::SwitchingMode::StoreAndForward,
     {10.517045454545451, 9, 21, 35, 2.1988636363636389, 0.14708333333333334, 0.14504977876106195, 880, 1044, false, true, 1807,
      71.664062500000028, 0.81757815567613024, 3.9071187179766693, 0.015625}},
    {1, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::Wormhole,
     {7.2590909090909062, 7, 13, 16, 2.1988636363636385, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.6171875, 0.36964618745354844, 2.4575106359768735, 0}},
    {1, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::VirtualCutThrough,
     {7.288636363636364, 7, 14, 16, 2.198863636363638, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.617187500000043, 0.36811466289760258, 2.4575106359768721, 0}},
    {1, sim::SelectionPolicy::RoundRobin, sim::SwitchingMode::StoreAndForward,
     {10.607954545454543, 10, 22, 35, 2.1988636363636389, 0.14704166666666665, 0.14504977876106195, 880, 1044, false, true, 1807,
      71.671875, 0.36551779835689913, 2.3998255940701982, 0}},
    {1, sim::SelectionPolicy::Random, sim::SwitchingMode::Wormhole,
     {7.4118967452300817, 7, 15, 18, 2.1907968574635239, 0.14854166666666666, 0.14651355838406199, 891, 1056, false, true, 1806,
      72.0390625, 0.34200415050754596, 2.0544409500054224, 0}},
    {1, sim::SelectionPolicy::Random, sim::SwitchingMode::VirtualCutThrough,
     {7.4266517357222863, 7, 15, 24, 2.1914893617021307, 0.14924999999999999, 0.14697726012201887, 893, 1058, false, true, 1802,
      72.125, 0.35867097055522512, 2.1074523396880416, 0}},
    {1, sim::SelectionPolicy::Random, sim::SwitchingMode::StoreAndForward,
     {10.583521444695259, 10, 22, 28, 2.1975169300225708, 0.14795833333333333, 0.14632799558255108, 886, 1056, false, true, 1810,
      72.210937500000028, 0.35020266161268004, 2.2157308233257593, 0}},
    {1, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::Wormhole,
     {7.22272727272727, 7, 14, 16, 2.1988636363636358, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.617187500000043, 0.96760039898080219, 4.4682011563215855, 0.0546875}},
    {1, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::VirtualCutThrough,
     {7.2545454545454593, 7, 14, 16, 2.1988636363636358, 0.14687500000000001, 0.14487534626038781, 880, 1044, false, true, 1804,
      71.617187500000043, 0.96760039898080219, 4.4682011563215855, 0.0546875}},
    {1, sim::SelectionPolicy::FirstCandidate, sim::SwitchingMode::StoreAndForward,
     {10.554545454545435, 10, 21, 35, 2.1988636363636389, 0.14708333333333334, 0.14504977876106195, 880, 1044, false, true, 1807,
      71.664062499999986, 0.93186539249959133, 4.6327264798866246, 0.046875}},
};

class GoldenSim : public ::testing::TestWithParam<GoldenRow>
{
};

TEST_P(GoldenSim, BitIdenticalToMonolithicSimulator)
{
    const GoldenRow &row = GetParam();
    const auto net = row.topo == 0
        ? topo::Network::mesh({4, 4}, {1, 2})
        : topo::Network::torus({4, 4}, {2, 2});
    const auto scheme = row.topo == 0 ? core::schemeFig7b()
                                      : core::torusAdaptiveScheme2d();
    const routing::EbDaRouting router(
        net, scheme, {},
        row.topo == 0 ? routing::EbDaRouting::Mode::Minimal
                      : routing::EbDaRouting::Mode::ShortestState);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.15;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    cfg.selection = row.selection;
    cfg.switching = row.switching;

    const auto r = sim::runSimulation(net, router, gen, cfg);
    const auto &e = row.expect;

    // Exact comparisons throughout: the goldens were printed with 17
    // significant digits, so == is the correct check. EXPECT_EQ on
    // doubles (not EXPECT_DOUBLE_EQ) is deliberate — zero ulps slack.
    EXPECT_EQ(r.avgLatency, e.avgLatency);
    EXPECT_EQ(r.p50Latency, e.p50Latency);
    EXPECT_EQ(r.p99Latency, e.p99Latency);
    EXPECT_EQ(r.maxLatency, e.maxLatency);
    EXPECT_EQ(r.avgHops, e.avgHops);
    EXPECT_EQ(r.acceptedRate, e.acceptedRate);
    EXPECT_EQ(r.offeredRate, e.offeredRate);
    EXPECT_EQ(r.packetsMeasured, e.packetsMeasured);
    EXPECT_EQ(r.packetsEjected, e.packetsEjected);
    EXPECT_EQ(r.deadlocked, e.deadlocked);
    EXPECT_EQ(r.drained, e.drained);
    EXPECT_EQ(r.cycles, e.cycles);
    EXPECT_EQ(r.channelLoadMean, e.channelLoadMean);
    EXPECT_EQ(r.channelLoadCv, e.channelLoadCv);
    EXPECT_EQ(r.channelLoadMaxRatio, e.channelLoadMaxRatio);
    EXPECT_EQ(r.channelsUnused, e.channelsUnused);

    // The new observability must be self-consistent on top.
    EXPECT_EQ(r.deadlockCycle.size(), 0u);
    EXPECT_FALSE(r.deadlockCycleInCdg);
    EXPECT_GT(r.channelOccupancyPeak, 0u);
    EXPECT_LE(r.channelOccupancyPeak,
              static_cast<std::uint64_t>(cfg.vcDepth));
}

std::string
rowName(const ::testing::TestParamInfo<GoldenRow> &info)
{
    const GoldenRow &row = info.param;
    std::string n = row.topo == 0 ? "Mesh4x4" : "Torus4x4";
    n += row.selection == sim::SelectionPolicy::MaxCredits ? "MaxCredits"
        : row.selection == sim::SelectionPolicy::RoundRobin ? "RoundRobin"
        : row.selection == sim::SelectionPolicy::Random     ? "Random"
                                                        : "FirstCandidate";
    n += row.switching == sim::SwitchingMode::Wormhole ? "Wormhole"
        : row.switching == sim::SwitchingMode::VirtualCutThrough ? "Vct"
                                                                 : "Saf";
    return n;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllModes, GoldenSim,
                         ::testing::ValuesIn(kGolden), rowName);

// ---------------------------------------------------------------------
// Forced-deadlock forensics: unrestricted minimal adaptive routing on a
// 1-VC torus must deadlock, and the forensic walk of the frozen fabric
// must produce a wait-for cycle that the Dally relation-CDG predicted.

TEST(DeadlockForensics, TorusMinimalRoutingYieldsVerifiedWaitCycle)
{
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const routing::MinimalAdaptiveRouting router(net);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.6;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 500;

    sim::Simulator simulator(net, router, gen, cfg);
    const auto result = simulator.run();
    ASSERT_TRUE(result.deadlocked);

    const auto &f = simulator.forensics();
    EXPECT_EQ(f.frozenAtCycle, result.cycles);
    EXPECT_GT(f.frozenFlits, 0u);
    EXPECT_FALSE(f.blocked.empty());
    ASSERT_FALSE(f.waitCycle.empty());
    EXPECT_EQ(result.deadlockCycle,
              std::vector<std::uint32_t>(f.waitCycle.begin(),
                                         f.waitCycle.end()));

    // Every hop of the witness must be a real channel and a real edge
    // of the statically built relation CDG — checked here directly
    // against buildRelationCdg, independent of the simulator's own
    // cross-reference flag.
    const graph::Digraph cdgGraph = cdg::buildRelationCdg(router);
    for (std::size_t k = 0; k < f.waitCycle.size(); ++k) {
        const topo::ChannelId from = f.waitCycle[k];
        const topo::ChannelId to =
            f.waitCycle[(k + 1) % f.waitCycle.size()];
        ASSERT_LT(from, net.numChannels());
        ASSERT_LT(to, net.numChannels());
        EXPECT_TRUE(cdgGraph.hasEdge(from, to))
            << "wait edge " << net.channelName(from) << " -> "
            << net.channelName(to) << " missing from the Dally CDG";
    }
    EXPECT_TRUE(f.cycleInRelationCdg);
    EXPECT_TRUE(result.deadlockCycleInCdg);

    // The dump must render every blocked buffer and the cycle.
    const std::string dump = f.describe(net);
    EXPECT_NE(dump.find("wait-for cycle"), std::string::npos);
    EXPECT_NE(dump.find("every edge in static relation CDG: yes"),
              std::string::npos);

    // A deadlocked run attributes most stalls to starvation, and the
    // stall counters must be populated.
    EXPECT_GT(result.stallVcStarved + result.stallCreditStarved, 0u);
}

// A deadlock-free router under the same pressure must not deadlock and
// must report an empty forensic witness.
TEST(DeadlockForensics, DeadlockFreeRouterHasNoWitness)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.6;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 30000;
    cfg.watchdogCycles = 1000;

    sim::Simulator simulator(net, router, gen, cfg);
    const auto result = simulator.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.deadlockCycle.empty());
    EXPECT_TRUE(simulator.forensics().waitCycle.empty());
}

} // namespace
