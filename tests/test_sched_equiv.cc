/**
 * @file
 * Trace-equivalence tests for the scheduling backends
 * (sim/scheduler.hh): for every configuration, a run under the
 * EventScheduler must produce a SimResult identical to the
 * CycleScheduler's in every field except the trailing
 * schedMode/wakeups pair — the event loop executes exactly the
 * non-empty cycles, reproducing the skipped ones' side effects
 * (injection draws, arbiter rotations, the genCycles counter) in
 * closed form.
 *
 * Coverage: all 24 golden-sim rows (both topologies, all four
 * selection policies, all three switching modes — Random selection
 * exercises the cycle-granular fallback), a genuinely sparse run where
 * the event loop skips most cycles, a dragonfly run, a faulted run
 * (fallback path), a forced deadlock, and an aborted (cycle-limited)
 * run. Comparison is on the full result JSON with the tail stripped,
 * so any new field is automatically covered.
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "core/torus.hh"
#include "routing/baselines.hh"
#include "routing/dragonfly.hh"
#include "routing/ebda_routing.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"

namespace {

using namespace ebda;

/** Result JSON minus the trailing schedMode/wakeups pair — the only
 *  fields the backends may legitimately disagree on. */
std::string
stripSchedTail(const sim::SimResult &r)
{
    std::string json = sim::toJson(r);
    const auto pos = json.find(",\"schedMode\":");
    EXPECT_NE(pos, std::string::npos)
        << "result JSON no longer carries the schedMode tail";
    if (pos != std::string::npos)
        json.erase(pos, json.size() - 1 - pos); // keep the final '}'
    return json;
}

struct ModeRun
{
    sim::SimResult result;
};

/** Run the same configuration under both backends and require
 *  trace equivalence. Returns the two results for extra checks. */
std::pair<sim::SimResult, sim::SimResult>
expectEquivalent(const topo::Network &net,
                 const cdg::RoutingRelation &routing,
                 const sim::TrafficGenerator &gen, sim::SimConfig cfg,
                 std::uint64_t cycle_limit = 0)
{
    cfg.schedMode = sim::SchedMode::Cycle;
    sim::Simulator cyc(net, routing, gen, cfg);
    if (cycle_limit)
        cyc.setCycleLimit(cycle_limit);
    const auto rc = cyc.run();

    cfg.schedMode = sim::SchedMode::Event;
    sim::Simulator evt(net, routing, gen, cfg);
    if (cycle_limit)
        evt.setCycleLimit(cycle_limit);
    const auto re = evt.run();

    EXPECT_EQ(rc.schedMode, sim::SchedMode::Cycle);
    EXPECT_EQ(re.schedMode, sim::SchedMode::Event);
    // The cycle loop wakes once per cycle (plus the final bottom-break
    // iteration); the event loop can only do fewer.
    EXPECT_EQ(rc.wakeups, rc.cycles + 1);
    EXPECT_LE(re.wakeups, rc.wakeups);
    EXPECT_EQ(stripSchedTail(rc), stripSchedTail(re));
    return {rc, re};
}

// ---------------------------------------------------------------------
// The 24 golden-sim configurations: topology 0/1 x 4 selection
// policies x 3 switching modes, exactly as tests/test_golden_sim.cc
// pins them. Equivalence here plus bit-identity there extends the
// golden guarantee to the event backend.

struct EquivRow
{
    int topo;
    sim::SelectionPolicy selection;
    sim::SwitchingMode switching;
};

class GoldenEquiv : public ::testing::TestWithParam<EquivRow>
{
};

TEST_P(GoldenEquiv, EventMatchesCycle)
{
    const EquivRow &row = GetParam();
    const auto net = row.topo == 0
        ? topo::Network::mesh({4, 4}, {1, 2})
        : topo::Network::torus({4, 4}, {2, 2});
    const auto scheme = row.topo == 0 ? core::schemeFig7b()
                                      : core::torusAdaptiveScheme2d();
    const routing::EbDaRouting router(
        net, scheme, {},
        row.topo == 0 ? routing::EbDaRouting::Mode::Minimal
                      : routing::EbDaRouting::Mode::ShortestState);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.15;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    cfg.selection = row.selection;
    cfg.switching = row.switching;
    expectEquivalent(net, router, gen, cfg);
}

std::string
equivRowName(const ::testing::TestParamInfo<EquivRow> &info)
{
    const EquivRow &row = info.param;
    std::string n = row.topo == 0 ? "Mesh4x4" : "Torus4x4";
    n += row.selection == sim::SelectionPolicy::MaxCredits ? "MaxCredits"
        : row.selection == sim::SelectionPolicy::RoundRobin ? "RoundRobin"
        : row.selection == sim::SelectionPolicy::Random     ? "Random"
                                                        : "FirstCandidate";
    n += row.switching == sim::SwitchingMode::Wormhole ? "Wormhole"
        : row.switching == sim::SwitchingMode::VirtualCutThrough ? "Vct"
                                                                 : "Saf";
    return n;
}

std::vector<EquivRow>
allGoldenRows()
{
    std::vector<EquivRow> rows;
    for (int topo = 0; topo < 2; ++topo)
        for (const auto sel :
             {sim::SelectionPolicy::MaxCredits,
              sim::SelectionPolicy::RoundRobin,
              sim::SelectionPolicy::Random,
              sim::SelectionPolicy::FirstCandidate})
            for (const auto sw :
                 {sim::SwitchingMode::Wormhole,
                  sim::SwitchingMode::VirtualCutThrough,
                  sim::SwitchingMode::StoreAndForward})
                rows.push_back({topo, sel, sw});
    return rows;
}

INSTANTIATE_TEST_SUITE_P(AllGoldenRows, GoldenEquiv,
                         ::testing::ValuesIn(allGoldenRows()),
                         equivRowName);

// ---------------------------------------------------------------------
// Targeted paths beyond the golden grid.

/** Sparse traffic is where the event loop actually skips: the run must
 *  stay equivalent AND execute far fewer cycles than it simulates. */
TEST(SchedEquiv, SparseRunSkipsMostCycles)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 7;
    cfg.injectionRate = 0.002;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 6000;
    cfg.drainCycles = 30000;
    const auto [rc, re] = expectEquivalent(net, router, gen, cfg);
    EXPECT_LT(re.wakeups, rc.wakeups / 2)
        << "event mode executed almost every cycle of a sparse run";
}

/** Permutation traffic draws no destination bits — the other draw
 *  profile the injection engine's replay has to reproduce. */
TEST(SchedEquiv, TransposeTraffic)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net,
                                    sim::TrafficPattern::Transpose);

    sim::SimConfig cfg;
    cfg.seed = 11;
    cfg.injectionRate = 0.004;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 30000;
    expectEquivalent(net, router, gen, cfg);
}

/** Hotspot consumes one or two extra draws per generated packet. */
TEST(SchedEquiv, HotspotTraffic)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Hotspot,
                                    27, 20);

    sim::SimConfig cfg;
    cfg.seed = 13;
    cfg.injectionRate = 0.006;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 30000;
    expectEquivalent(net, router, gen, cfg);
}

TEST(SchedEquiv, DragonflyRun)
{
    const auto net = topo::Network::dragonfly(4, 2, 2);
    const routing::DragonflyMinRouting router(net, 4);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 23;
    cfg.injectionRate = 0.01;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    expectEquivalent(net, router, gen, cfg);
}

/** Fault plans take the cycle-granular fallback inside the event
 *  backend; results must still match, wakeups == cycles. */
TEST(SchedEquiv, FaultedRunFallsBackEquivalently)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.1;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    cfg.faults.randomLinkFaults = 2;
    cfg.faults.firstCycle = 600;
    cfg.faults.spacing = 400;
    const auto [rc, re] = expectEquivalent(net, router, gen, cfg);
    EXPECT_GT(re.faultEventsApplied, 0u);
    EXPECT_EQ(re.wakeups, rc.wakeups)
        << "faulted runs must take the cycle-granular fallback";
}

/** The deadlock path: watchdog trip, forensic walk, identical witness
 *  in both modes. */
TEST(SchedEquiv, DeadlockedRun)
{
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const routing::MinimalAdaptiveRouting router(net);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.6;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 500;
    const auto [rc, re] = expectEquivalent(net, router, gen, cfg);
    EXPECT_TRUE(rc.deadlocked);
    EXPECT_TRUE(re.deadlocked);
    EXPECT_EQ(rc.deadlockCycle, re.deadlockCycle);
}

/** Cooperative cycle limit: both backends must abort at the same
 *  cycle with the same partial statistics. */
TEST(SchedEquiv, CycleLimitedRunAborts)
{
    const auto net = topo::Network::mesh({8, 8}, {1, 2});
    const routing::EbDaRouting router(net, core::schemeFig7b());
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.seed = 5;
    cfg.injectionRate = 0.003;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 8000;
    cfg.drainCycles = 30000;
    const auto [rc, re] =
        expectEquivalent(net, router, gen, cfg, 4500);
    EXPECT_TRUE(rc.aborted);
    EXPECT_TRUE(re.aborted);
    EXPECT_EQ(rc.cycles, 4500u);
}

/** Auto resolution: the rate heuristic picks event mode below the
 *  threshold and cycle mode above, and an explicit setting wins over
 *  the environment (the config here is explicit, so this test is
 *  stable under a CI-wide EBDA_SCHED_MODE override). */
TEST(SchedEquiv, AutoResolvesByInjectionRate)
{
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Cycle, 0.001),
              sim::SchedMode::Cycle);
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Event, 0.9),
              sim::SchedMode::Event);
#if !defined(_WIN32)
    // Pin the environment for the Auto cases.
    ::setenv("EBDA_SCHED_MODE", "event", 1);
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Auto, 0.9),
              sim::SchedMode::Event);
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Cycle, 0.001),
              sim::SchedMode::Cycle);
    ::unsetenv("EBDA_SCHED_MODE");
#endif
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Auto,
                                    sim::kEventModeRateThreshold / 2),
              sim::SchedMode::Event);
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Auto,
                                    sim::kEventModeRateThreshold),
              sim::SchedMode::Cycle);
}

/** The Auto cutoff also tracks fabric size: what matters for the
 *  event queue is the fabric-wide arrival rate, so above the
 *  reference node count the per-node cutoff shrinks proportionally.
 *  At or below the reference size every resolution must match the
 *  2-arg overload — pre-existing Auto picks are unchanged. */
TEST(SchedEquiv, AutoCutoffScalesWithFabricSize)
{
    const double rate = sim::kEventModeRateThreshold / 2;
    // Small fabrics (and the 0 = unknown default): same as 2-arg.
    for (const std::size_t n : {std::size_t{0}, std::size_t{16},
                                sim::kEventModeRefNodes}) {
        EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Auto, rate, n),
                  sim::resolveSchedMode(sim::SchedMode::Auto, rate));
    }
    // 4x the reference size quarters the cutoff: a rate halfway to
    // the nominal threshold is now firmly in cycle-mode territory.
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Auto, rate,
                                    4 * sim::kEventModeRefNodes),
              sim::SchedMode::Cycle);
    // But a rate below the scaled cutoff still resolves to Event.
    EXPECT_EQ(sim::resolveSchedMode(
                  sim::SchedMode::Auto,
                  sim::kEventModeRateThreshold / 16,
                  4 * sim::kEventModeRefNodes),
              sim::SchedMode::Event);
    // Explicit requests are never overridden by fabric size.
    EXPECT_EQ(sim::resolveSchedMode(sim::SchedMode::Event, 0.9,
                                    4 * sim::kEventModeRefNodes),
              sim::SchedMode::Event);
}

} // namespace
