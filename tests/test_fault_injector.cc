/**
 * @file
 * Runtime fault-injection tests: deterministic schedule
 * materialization, liveness masks and the degraded relation view,
 * graceful degradation with drop-and-retransmit recovery, bit-identical
 * replay from (seed, FaultPlan), per-router RNG substream isolation,
 * the per-event degraded-CDG oracle, and the negative control — a
 * relation without Theorem-2 U-turns wedging under the same schedule
 * the full EbDa turn set absorbs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "sim/fault_injector.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"

namespace ebda::sim {
namespace {

SimConfig
faultyConfig()
{
    SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.06;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 30000;
    cfg.watchdogCycles = 1500;
    cfg.faults.seed = 99;
    cfg.faults.firstCycle = 600;
    cfg.faults.spacing = 400;
    return cfg;
}

/** Fig 7(b) fully adaptive EbDa scheme on a mesh (VC budget 1,2). */
routing::EbDaRouting
fig7bRouter(const topo::Network &net)
{
    return routing::EbDaRouting(net, core::schemeFig7b(), {},
                                routing::EbDaRouting::Mode::ShortestState);
}

TEST(FaultInjector, EmptyPlanIsDisabled)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const FaultInjector inj(net, FaultPlan{});
    EXPECT_FALSE(inj.enabled());
    EXPECT_TRUE(inj.schedule().empty());
    EXPECT_EQ(inj.nextEventCycle(), ~std::uint64_t{0});
    EXPECT_FALSE(inj.anyDead());
}

TEST(FaultInjector, RandomScheduleIsDeterministic)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    FaultPlan plan;
    plan.randomLinkFaults = 2;
    plan.randomRouterFaults = 1;
    plan.seed = 7;
    plan.firstCycle = 100;
    plan.spacing = 50;

    const FaultInjector a(net, plan);
    const FaultInjector b(net, plan);
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
        EXPECT_EQ(a.schedule()[i].cycle, b.schedule()[i].cycle);
        EXPECT_EQ(a.schedule()[i].router, b.schedule()[i].router);
        EXPECT_EQ(a.schedule()[i].node, b.schedule()[i].node);
        EXPECT_EQ(a.schedule()[i].src, b.schedule()[i].src);
        EXPECT_EQ(a.schedule()[i].dst, b.schedule()[i].dst);
    }
    // A physical link fault kills both directions at the same cycle:
    // 2 link faults -> 4 events, plus 1 router event.
    EXPECT_EQ(a.schedule().size(), 5u);
    // Sorted by cycle, spaced per the plan.
    for (std::size_t i = 1; i < a.schedule().size(); ++i)
        EXPECT_LE(a.schedule()[i - 1].cycle, a.schedule()[i].cycle);

    FaultPlan other = plan;
    other.seed = 8;
    const FaultInjector c(net, other);
    const bool same_first =
        !c.schedule().empty() && !a.schedule().empty()
        && c.schedule().front().src == a.schedule().front().src
        && c.schedule().front().dst == a.schedule().front().dst
        && c.schedule().front().node == a.schedule().front().node;
    const bool same_last =
        !c.schedule().empty() && !a.schedule().empty()
        && c.schedule().back().src == a.schedule().back().src
        && c.schedule().back().dst == a.schedule().back().dst;
    EXPECT_FALSE(same_first && same_last) << "seed must matter";
}

TEST(FaultInjector, InvalidExplicitEventsAreDropped)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    FaultPlan plan;
    FaultEvent bad_link; // nodes 0 and 5 are not adjacent in a 4x4 mesh
    bad_link.cycle = 10;
    bad_link.src = 0;
    bad_link.dst = 5;
    FaultEvent bad_node;
    bad_node.cycle = 10;
    bad_node.router = true;
    bad_node.node = 999;
    FaultEvent good;
    good.cycle = 20;
    good.src = 0;
    good.dst = 1;
    plan.events = {bad_link, bad_node, good};

    const FaultInjector inj(net, plan);
    ASSERT_EQ(inj.schedule().size(), 1u);
    EXPECT_EQ(inj.schedule().front().src, 0u);
    EXPECT_EQ(inj.schedule().front().dst, 1u);
}

TEST(FaultInjector, MasksAndDegradedViewAfterApply)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const auto router = fig7bRouter(net);

    FaultPlan plan;
    FaultEvent ev;
    ev.cycle = 5;
    ev.src = 0;
    ev.dst = 1;
    plan.events = {ev};

    SimConfig cfg;
    FaultInjector inj(net, plan);
    FaultedRelationView view(router, inj);
    Fabric fab(net, cfg);
    ActiveSet active(fab.ivcs.size());

    // Before the event fires the view is transparent.
    const auto before =
        view.candidates(cdg::kInjectionChannel, 0, 0, 3);
    EXPECT_EQ(before,
              router.candidates(cdg::kInjectionChannel, 0, 0, 3));

    EXPECT_TRUE(inj.apply(5, fab, active).empty()); // empty fabric
    EXPECT_EQ(inj.eventsApplied(), 1u);
    EXPECT_TRUE(inj.anyDead());
    EXPECT_EQ(inj.deadLinkCount(), 1u);

    // Every channel of the dead 0->1 link is dead; the degraded view
    // must not offer any of them anywhere.
    bool found_dead_channel = false;
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        const auto &l = net.link(net.linkOf(c));
        if (l.src == 0 && l.dst == 1) {
            EXPECT_TRUE(inj.channelDead(c));
            found_dead_channel = true;
        }
    }
    ASSERT_TRUE(found_dead_channel);
    for (topo::NodeId d = 1; d < net.numNodes(); ++d) {
        for (const topo::ChannelId c :
             view.candidates(cdg::kInjectionChannel, 0, 0, d))
            EXPECT_FALSE(inj.channelDead(c));
    }
    EXPECT_NE(view.name().find("degraded"), std::string::npos);
}

TEST(FaultInjector, GracefulDegradationUnderLinkFaults)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.faults.randomLinkFaults = 2;
    const auto result = runSimulation(net, router, gen, cfg);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.degradedGracefully);
    EXPECT_TRUE(result.drained);
    EXPECT_EQ(result.faultEventsApplied, 4u); // 2 links x 2 directions
    EXPECT_GT(result.deliveredFraction, 0.5);
    EXPECT_LE(result.deliveredFraction, 1.0);
    // The degraded-CDG oracle ran after every fault tick and found the
    // relation still deadlock-free (the Theorem-2 machine check).
    EXPECT_GT(result.faultChecks, 0u);
    EXPECT_EQ(result.faultChecks, result.faultChecksClean);
    // Faults at a live injection rate must actually disturb traffic.
    EXPECT_GT(result.packetsDropped, 0u);
}

TEST(FaultInjector, RouterDeathDropsItsTraffic)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.faults.randomRouterFaults = 1;
    const auto result = runSimulation(net, router, gen, cfg);

    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_EQ(result.faultEventsApplied, 1u);
    // Packets at / destined to the dead router are unrecoverable.
    EXPECT_GT(result.packetsLost, 0u);
    EXPECT_LT(result.deliveredFraction, 1.0);
    EXPECT_GT(result.deliveredFraction, 0.5);
}

TEST(FaultInjector, ReplayIsBitIdentical)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.faults.randomLinkFaults = 2;
    cfg.faults.randomRouterFaults = 1;
    const auto a = runSimulation(net, router, gen, cfg);
    const auto b = runSimulation(net, router, gen, cfg);
    // The JSON dump covers every result field with exact doubles, so
    // equality here pins bit-identical replay of the faulty run.
    EXPECT_EQ(toJson(a), toJson(b));
    EXPECT_GT(a.faultEventsApplied, 0u);
}

TEST(FaultInjector, LiveRouterSubstreamsUnaffectedByFaultsElsewhere)
{
    // Fault events must not shift any live router's RNG substream:
    // with drain disabled every run executes exactly the same number
    // of cycles, so a live node's stream position depends only on the
    // cycle count — not on which other routers or links died.
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.drainCycles = 0;
    cfg.faults.firstCycle = 200;

    auto stream_after = [&](std::uint32_t dead_node) {
        auto c = cfg;
        FaultEvent ev;
        ev.cycle = 200;
        ev.router = true;
        ev.node = dead_node;
        c.faults.events = {ev};
        Simulator s(net, router, gen, c);
        (void)s.run();
        Rng probe = s.routers()[30].rng; // node 30 stays alive
        return probe.next();
    };

    const auto with_node5_dead = stream_after(5);
    const auto with_node12_dead = stream_after(12);
    EXPECT_EQ(with_node5_dead, with_node12_dead);
}

TEST(FaultInjector, RetransmitBudgetZeroLosesEveryDrop)
{
    const auto net = topo::Network::mesh({6, 6}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.faults.randomLinkFaults = 2;
    cfg.faults.maxRetransmits = 0;
    const auto result = runSimulation(net, router, gen, cfg);

    EXPECT_GT(result.packetsDropped, 0u);
    EXPECT_EQ(result.packetsRetransmitted, 0u);
    EXPECT_EQ(result.packetsLost, result.packetsDropped);
    EXPECT_FALSE(result.deadlocked);
}

TEST(FaultInjector, WedgeNegativeControlVersusGracefulEbda)
{
    // The same fault schedule on the same 1-VC torus: unrestricted
    // minimal-adaptive routing wedges (watchdog escalation runs out of
    // recovery passes and declares deadlock, with a concrete forensic
    // witness), while a run without the fault completes. This is the
    // sweep engine's quarantine trigger exercised at the source.
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const routing::MinimalAdaptiveRouting router(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.5;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 500;
    cfg.faults.randomLinkFaults = 1;
    cfg.faults.seed = 3;
    cfg.faults.firstCycle = 200;

    Simulator simulator(net, router, gen, cfg);
    const auto result = simulator.run();

    ASSERT_TRUE(result.deadlocked);
    EXPECT_FALSE(result.degradedGracefully);
    // Escalation was attempted before giving up.
    EXPECT_EQ(result.recoveryPasses,
              static_cast<std::uint64_t>(cfg.faults.maxRecoveryAttempts));
    EXPECT_FALSE(result.deadlockCycle.empty());
    EXPECT_FALSE(simulator.forensics().blocked.empty());

    // Control: the full EbDa turn set survives an identical plan on a
    // mesh workload at the same offered load (U-turns reroute).
    const auto mesh = topo::Network::mesh({4, 4}, {1, 2});
    const auto ebda = fig7bRouter(mesh);
    const TrafficGenerator mesh_gen(mesh, TrafficPattern::Uniform);
    auto ebda_cfg = cfg;
    ebda_cfg.injectionRate = 0.1;
    ebda_cfg.watchdogCycles = 2000;
    const auto graceful =
        runSimulation(mesh, ebda, mesh_gen, ebda_cfg);
    EXPECT_FALSE(graceful.deadlocked);
    EXPECT_TRUE(graceful.degradedGracefully);
    EXPECT_EQ(graceful.recoveryPasses, 0u);
    EXPECT_GT(graceful.deliveredFraction, 0.5);
}

TEST(FaultInjector, TorusWrapWaitCycleForensics)
{
    // Deadlock forensics on a k-ary n-cube: the frozen wait-for cycle
    // of a wedged 1-VC torus must traverse at least one wrap-around
    // channel (the dependency the mesh cannot express), and every edge
    // must be present in the static relation CDG.
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const routing::MinimalAdaptiveRouting router(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    SimConfig cfg;
    cfg.seed = 2017;
    cfg.injectionRate = 0.6;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 2000;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 500;

    Simulator simulator(net, router, gen, cfg);
    const auto result = simulator.run();
    ASSERT_TRUE(result.deadlocked);
    ASSERT_FALSE(result.deadlockCycle.empty());
    EXPECT_TRUE(result.deadlockCycleInCdg);

    const bool crosses_wrap = std::any_of(
        result.deadlockCycle.begin(), result.deadlockCycle.end(),
        [&](std::uint32_t c) {
            return net.link(net.linkOf(static_cast<topo::ChannelId>(c)))
                .wrap;
        });
    EXPECT_TRUE(crosses_wrap)
        << "a torus wait cycle closes through the wrap links";
}

TEST(FaultInjector, CycleLimitAbortsCooperatively)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const auto router = fig7bRouter(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    auto cfg = faultyConfig();
    cfg.faults.randomLinkFaults = 1;
    Simulator simulator(net, router, gen, cfg);
    simulator.setCycleLimit(100);
    const auto result = simulator.run();
    EXPECT_TRUE(result.aborted);
    EXPECT_LE(result.cycles, 100u);

    Simulator interrupted(net, router, gen, cfg);
    interrupted.setAbortCheck([]() { return true; });
    const auto r2 = interrupted.run();
    EXPECT_TRUE(r2.aborted);
    EXPECT_EQ(r2.cycles, 0u);
}

TEST(FaultPlanJson, RoundTripsThroughConfigJson)
{
    SimConfig cfg;
    cfg.faults.randomLinkFaults = 3;
    cfg.faults.seed = 42;
    cfg.faults.firstCycle = 111;
    cfg.faults.spacing = 222;
    cfg.faults.maxRetransmits = 5;
    cfg.faults.retransmitBackoff = 8;
    cfg.faults.checkDegradedCdg = false;
    FaultEvent ev;
    ev.cycle = 77;
    ev.router = true;
    ev.node = 9;
    cfg.faults.events.push_back(ev);

    const auto doc = parseJson(toJson(cfg));
    ASSERT_TRUE(doc.has_value());
    std::string err;
    const auto back = configFromJson(*doc, &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->faults.randomLinkFaults, 3);
    EXPECT_EQ(back->faults.seed, 42u);
    EXPECT_EQ(back->faults.firstCycle, 111u);
    EXPECT_EQ(back->faults.spacing, 222u);
    EXPECT_EQ(back->faults.maxRetransmits, 5);
    EXPECT_EQ(back->faults.retransmitBackoff, 8u);
    EXPECT_FALSE(back->faults.checkDegradedCdg);
    ASSERT_EQ(back->faults.events.size(), 1u);
    EXPECT_TRUE(back->faults.events[0].router);
    EXPECT_EQ(back->faults.events[0].cycle, 77u);
    EXPECT_EQ(back->faults.events[0].node, 9u);
    // Canonical config JSON is stable: same config, same bytes.
    EXPECT_EQ(toJson(cfg), toJson(*back));
}

TEST(FaultPlanJson, ErrorsNameTheFullKeyPath)
{
    auto expectError = [](const std::string &json,
                          const std::string &needle) {
        const auto doc = parseJson(json);
        ASSERT_TRUE(doc.has_value());
        std::string err;
        EXPECT_FALSE(configFromJson(*doc, &err).has_value());
        EXPECT_NE(err.find(needle), std::string::npos)
            << "got: " << err;
    };
    expectError(R"({"faults":{"sed":1}})", "faults.sed");
    expectError(R"({"faults":{"seed":"x"}})", "'faults.seed'");
    expectError(R"({"faults":{"events":[{"cycle":1,"kind":"blimp"}]}})",
                "faults.events[0]");
}

} // namespace
} // namespace ebda::sim
