/**
 * @file
 * Property-based cross-validation of the EbDa theory against the Dally
 * oracle: every scheme the theory accepts must have an acyclic concrete
 * CDG on every network we throw at it, sub-partitions of cycle-free
 * partitions stay cycle-free, and randomized turn subsets confirm the
 * oracle's monotonicity.
 */

#include <gtest/gtest.h>

#include "cdg/adaptivity.hh"
#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/derivation.hh"
#include "core/enumerate.hh"
#include "core/minimal.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"
#include "util/random.hh"

namespace ebda {
namespace {

using core::ChannelClass;
using core::makeClass;
using core::Partition;
using core::PartitionScheme;
using core::Sign;

/** Random ordered Theorem-1 scheme over the given classes, or nullopt
 *  when the assignment draw violates the theorems. */
std::optional<PartitionScheme>
randomScheme(const core::ClassList &classes, Rng &rng)
{
    const std::size_t blocks = 1 + rng.nextBounded(classes.size());
    std::vector<core::ClassList> assign(blocks);
    for (const auto &c : classes)
        assign[rng.nextBounded(blocks)].push_back(c);

    std::vector<Partition> parts;
    for (auto &b : assign) {
        if (b.empty())
            continue;
        Partition p(b);
        if (!p.satisfiesTheorem1())
            return std::nullopt;
        parts.push_back(std::move(p));
    }
    PartitionScheme scheme(std::move(parts));
    if (!scheme.validate().ok)
        return std::nullopt;
    return scheme;
}

core::ClassList
allClasses(std::uint8_t dims, const std::vector<int> &vcs)
{
    core::ClassList out;
    for (std::uint8_t d = 0; d < dims; ++d) {
        for (int v = 0; v < vcs[d]; ++v) {
            out.push_back(makeClass(d, Sign::Pos,
                                    static_cast<std::uint8_t>(v)));
            out.push_back(makeClass(d, Sign::Neg,
                                    static_cast<std::uint8_t>(v)));
        }
    }
    return out;
}

/** The central soundness property, parameterized by network shape. */
struct ShapeParam
{
    std::vector<int> dims;
    std::vector<int> vcs;
    bool torus;
};

/** Readable parameterized-test names like "mesh_4x4_vcs1_1". */
std::string
shapeName(const ::testing::TestParamInfo<ShapeParam> &info)
{
    std::string name = info.param.torus ? "torus" : "mesh";
    for (std::size_t i = 0; i < info.param.dims.size(); ++i)
        name += (i ? "x" : "_") + std::to_string(info.param.dims[i]);
    name += "_vcs";
    for (std::size_t i = 0; i < info.param.vcs.size(); ++i)
        name += (i ? "_" : "") + std::to_string(info.param.vcs[i]);
    return name;
}

class SchemeSoundness : public ::testing::TestWithParam<ShapeParam>
{
};

TEST_P(SchemeSoundness, AcceptedSchemesHaveAcyclicCdg)
{
    const auto &param = GetParam();
    const auto net = param.torus
        ? topo::Network::torus(param.dims, param.vcs)
        : topo::Network::mesh(param.dims, param.vcs);
    const auto classes = allClasses(
        static_cast<std::uint8_t>(param.dims.size()), param.vcs);

    Rng rng(0xEBDA + param.dims.size() * 1000
            + static_cast<std::uint64_t>(param.torus));
    int accepted = 0;
    for (int trial = 0; trial < 400 && accepted < 60; ++trial) {
        const auto scheme = randomScheme(classes, rng);
        if (!scheme)
            continue;
        ++accepted;
        const auto report = cdg::checkDeadlockFree(net, *scheme);
        EXPECT_TRUE(report.deadlockFree)
            << "theorem-accepted scheme with cyclic CDG: "
            << scheme->toString() << "\nfirst witness channel: "
            << (report.witness.empty() ? "-" : report.witness.front());
    }
    EXPECT_GT(accepted, 5) << "generator produced too few valid schemes";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchemeSoundness,
    ::testing::Values(ShapeParam{{4, 4}, {1, 1}, false},
                      ShapeParam{{5, 3}, {2, 2}, false},
                      ShapeParam{{3, 3, 3}, {1, 1, 1}, false},
                      ShapeParam{{3, 3, 3}, {2, 2, 2}, false},
                      ShapeParam{{6, 6}, {1, 1}, true},
                      ShapeParam{{4, 4, 4}, {2, 1, 2}, false},
                      ShapeParam{{8}, {3}, false},
                      ShapeParam{{5, 5}, {3, 1}, false}),
    shapeName);

TEST(SchemeProperties, SubPartitionsOfCycleFreePartitionsAreCycleFree)
{
    // Corollary of Theorem 1, checked via the oracle: dropping classes
    // from a valid scheme keeps it valid and acyclic.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const auto base = core::regionScheme(2);
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<Partition> parts;
        for (const auto &p : base.partitions()) {
            core::ClassList keep;
            for (const auto &c : p.classes())
                if (rng.nextBool(0.7))
                    keep.push_back(c);
            if (!keep.empty())
                parts.emplace_back(keep);
        }
        if (parts.empty())
            continue;
        PartitionScheme sub(std::move(parts));
        ASSERT_TRUE(sub.validate().ok);
        EXPECT_TRUE(cdg::checkDeadlockFree(net, sub).deadlockFree)
            << sub.toString();
    }
}

TEST(SchemeProperties, EveryEnumerated2dSchemeDeadlockFreeAndConnected)
{
    // Exhaustive rather than random: all 74 ordered Theorem-1 schemes
    // over the four 2D classes are deadlock-free; those covering all
    // four classes in a connected chain deliver all pairs minimally.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto schemes = core::enumerateSchemes(core::classes2d());
    ASSERT_EQ(schemes.size(), 74u);
    for (const auto &s : schemes) {
        EXPECT_TRUE(cdg::checkDeadlockFree(net, s).deadlockFree)
            << s.toString();
        const auto adapt = cdg::measureAdaptiveness(net, s);
        EXPECT_FALSE(adapt.disconnectedMinimal) << s.toString();
    }
}

TEST(SchemeProperties, DerivedSchemesAreSound)
{
    // Everything Algorithm 1 + Algorithm 2 emit across VC budgets is
    // oracle-verified.
    const auto net = topo::Network::mesh({4, 4}, {3, 3});
    for (const auto &vcs :
         {std::vector<int>{1, 1}, std::vector<int>{2, 1},
          std::vector<int>{2, 2}, std::vector<int>{3, 2},
          std::vector<int>{1, 3}}) {
        for (const auto &scheme : core::deriveAll(vcs)) {
            EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree)
                << scheme.toString();
        }
    }
}

TEST(SchemeProperties, Derived3dSchemesAreSound)
{
    const auto net = topo::Network::mesh({3, 3, 3}, {2, 2, 2});
    core::DerivationOptions opts;
    opts.maxSchemes = 40;
    for (const auto &scheme : core::deriveAll({2, 2, 2}, opts)) {
        EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree)
            << scheme.toString();
    }
}

TEST(SchemeProperties, MinimalConstructionsSoundForHigherDims)
{
    // 4D sweep: 40 channels, merged construction still acyclic.
    const auto net = topo::Network::mesh({3, 3, 3, 3}, {2, 2, 2, 8});
    EXPECT_TRUE(
        cdg::checkDeadlockFree(net, core::mergedScheme(4)).deadlockFree);
}

TEST(SchemeProperties, ViolatingSchemesAreCaughtByOracle)
{
    // Randomized negative control: explicit turn sets that allow every
    // turn of two complete pairs must be cyclic on a concrete mesh.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto classes = core::classes2d();
    std::vector<std::pair<ChannelClass, ChannelClass>> all_turns;
    for (const auto &a : classes)
        for (const auto &b : classes)
            if (!(a == b))
                all_turns.emplace_back(a, b);

    Rng rng(7);
    int cyclic_found = 0;
    for (int trial = 0; trial < 40; ++trial) {
        // Keep a random 80%+ of the turns; with both pairs fully
        // present most subsets remain cyclic, and whenever our oracle
        // says acyclic the subset must genuinely miss a cycle corner.
        std::vector<std::pair<ChannelClass, ChannelClass>> subset;
        for (const auto &t : all_turns)
            if (rng.nextBool(0.85))
                subset.push_back(t);
        const auto set = core::TurnSet::fromExplicit(classes, subset);
        const cdg::ClassMap map(net, classes);
        if (!cdg::checkDeadlockFree(net, map, set).deadlockFree)
            ++cyclic_found;
    }
    EXPECT_GT(cyclic_found, 20);
}

TEST(SchemeProperties, RelationCdgIsSubgraphOfTurnCdg)
{
    // The routing relation's reachable dependencies are a subset of the
    // turn-level over-approximation — the formal reason EbDaRouting
    // inherits the oracle verdict.
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    for (const auto &scheme :
         {core::schemeFig7b(), core::schemeOddEven(),
          core::schemeNorthLast()}) {
        const routing::EbDaRouting r(net, scheme);
        const auto relation_cdg = cdg::buildRelationCdg(r);
        const cdg::ClassMap map(net, scheme);
        const auto turn_cdg =
            cdg::buildTurnCdg(net, map, r.turnSet());
        for (graph::NodeId u = 0; u < relation_cdg.numNodes(); ++u) {
            for (graph::NodeId v : relation_cdg.successors(u)) {
                EXPECT_TRUE(turn_cdg.hasEdge(u, v))
                    << scheme.toString() << ": relation dependency "
                    << net.channelName(u) << " -> " << net.channelName(v)
                    << " missing from the turn CDG";
            }
        }
    }
}

TEST(SchemeProperties, FourDimensionalEndToEnd)
{
    // Arbitrary-n support, end to end: the merged construction on a
    // 2^4 hypercube-like mesh routes, verifies and simulates.
    const auto scheme = core::mergedScheme(4);
    const auto net = topo::Network::mesh({2, 2, 2, 2},
                                         core::vcsRequired(scheme));
    EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree);

    const routing::EbDaRouting r(net, scheme);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);

    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.seed = 41;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
}

TEST(SchemeProperties, MonotoneUnderMeshGrowth)
{
    // If a scheme is deadlock-free on a larger mesh it must be
    // deadlock-free on any sub-mesh (the CDG embeds).
    for (const auto &scheme : core::deriveAll({2, 2})) {
        const auto small = topo::Network::mesh({3, 3}, {2, 2});
        const auto large = topo::Network::mesh({6, 6}, {2, 2});
        const bool ok_small =
            cdg::checkDeadlockFree(small, scheme).deadlockFree;
        const bool ok_large =
            cdg::checkDeadlockFree(large, scheme).deadlockFree;
        EXPECT_EQ(ok_small, ok_large) << scheme.toString();
    }
}

} // namespace
} // namespace ebda
