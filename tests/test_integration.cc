/**
 * @file
 * Integration tests: the full EbDa pipeline from VC budget to running
 * network — derive partitions (Algorithm 1/2), validate (Theorems 1-3),
 * verify (Dally oracle), measure adaptiveness, route and simulate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdg/adaptivity.hh"
#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/derivation.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/ebda_routing.hh"
#include "routing/elevator.hh"
#include "sim/simulator.hh"

namespace ebda {
namespace {

TEST(Pipeline, DeriveVerifyRouteSimulate)
{
    // 1. Derive schemes for a (1, 2)-VC 2D budget.
    const auto schemes = core::deriveAll({1, 2});
    ASSERT_FALSE(schemes.empty());

    // 2. Pick the most adaptive scheme by exact measurement.
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const core::PartitionScheme *best = nullptr;
    double best_adapt = -1.0;
    for (const auto &s : schemes) {
        const auto adapt = cdg::measureAdaptiveness(net, s);
        if (adapt.disconnectedMinimal)
            continue;
        if (adapt.averageFraction > best_adapt) {
            best_adapt = adapt.averageFraction;
            best = &s;
        }
    }
    ASSERT_NE(best, nullptr);
    // The minimum-channel budget admits a fully adaptive design.
    EXPECT_DOUBLE_EQ(best_adapt, 1.0) << best->toString();

    // 3. Oracle verification.
    EXPECT_TRUE(cdg::checkDeadlockFree(net, *best).deadlockFree);

    // 4. Routing relation: connected, deadlock-free.
    const routing::EbDaRouting r(net, *best);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
    EXPECT_TRUE(cdg::checkDeadlockFree(r).deadlockFree);

    // 5. Simulation: drains without deadlock.
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 1000;
    cfg.injectionRate = 0.1;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 50u);
}

TEST(Pipeline, Table1SchemesClassifyAndVerify)
{
    // The three unique Glass-Ni algorithms appear among the derived
    // maximum-adaptiveness options, and each derived option is sound.
    core::DerivationOptions opts;
    opts.permuteTransitionOrders = true;
    const auto schemes = core::deriveAll({1, 1}, opts);
    const auto net = topo::Network::mesh({5, 5}, {1, 1});

    std::set<std::string> classical;
    for (const auto &s : schemes) {
        EXPECT_TRUE(cdg::checkDeadlockFree(net, s).deadlockFree)
            << s.toString();
        if (const auto name = core::classify2dScheme(s))
            classical.insert(*name);
    }
    EXPECT_TRUE(classical.count("North-Last"));
    EXPECT_TRUE(classical.count("West-First"));
    EXPECT_TRUE(classical.count("Negative-First"));
}

TEST(Pipeline, EbDaBeatsDeterministicUnderTranspose)
{
    // The motivation claim: adaptive EbDa routing outperforms XY under
    // adversarial (transpose) traffic at moderate load.
    const auto net = topo::Network::mesh({6, 6}, {2, 2});
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Transpose);

    sim::SimConfig cfg;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 60000;
    cfg.injectionRate = 0.30;
    cfg.seed = 11;

    const routing::EbDaRouting adaptive(net, core::schemeFig7b());
    const auto xy = routing::DimensionOrderRouting::xy(net);

    const auto r_adaptive = runSimulation(net, adaptive, gen, cfg);
    const auto r_xy = runSimulation(net, xy, gen, cfg);

    EXPECT_FALSE(r_adaptive.deadlocked);
    EXPECT_FALSE(r_xy.deadlocked);
    // Adaptive routing accepts at least as much transpose traffic.
    EXPECT_GE(r_adaptive.acceptedRate + 0.01, r_xy.acceptedRate);
}

TEST(Pipeline, Figure8TurnExtractionConsistency)
{
    // The Figure 9(b) scheme drives Figure 8: per-partition Theorem-1
    // turn counts are 10 each for partitions with 2 X/Y classes + a Z
    // pair, and the whole set is sound on a 3D mesh.
    const auto scheme = core::schemeFig9b();
    const auto set = core::TurnSet::extract(scheme);

    for (std::uint16_t p = 0; p < 4; ++p) {
        std::size_t t90 = 0;
        std::size_t ui = 0;
        for (const auto &t : set.turnsBetween(p, p)) {
            if (t.kind == core::TurnKind::Turn90)
                ++t90;
            else
                ++ui;
        }
        // Figure 8 lists 10 90-degree turns per partition and one
        // Theorem-2 U-turn along the Z pair.
        EXPECT_EQ(t90, 10u) << "partition " << p;
        EXPECT_EQ(ui, 1u) << "partition " << p;
    }

    const auto net = topo::Network::mesh({3, 3, 3}, {2, 2, 4});
    EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree);

    const routing::EbDaRouting r(net, scheme);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
}

TEST(Pipeline, IrregularNetworkEndToEnd)
{
    // Partially connected 3D: Elevator-First baseline vs the EbDa
    // scheme-driven router, both verified and simulated.
    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 2}, {2, 0}, {2, 2}};
    const auto net = topo::Network::partialMesh3d({3, 3, 2}, {2, 2, 1},
                                                  elevators);
    const routing::ElevatorFirstRouting elevator(net, elevators);
    EXPECT_TRUE(cdg::checkConnectivity(elevator).connected);
    EXPECT_TRUE(cdg::checkDeadlockFree(elevator).deadlockFree);

    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.injectionRate = 0.05;
    const auto result = runSimulation(net, elevator, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
}

TEST(Pipeline, AdaptivenessOrderingMatchesPartitionCount)
{
    // Section 5.3.2: more partitions => less adaptive. Two, three and
    // four partitions over the same four channels.
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const auto two = cdg::measureAdaptiveness(net, core::schemeFig6P4());
    const auto three = cdg::measureAdaptiveness(net, core::schemeFig6P2());
    const auto four = cdg::measureAdaptiveness(net, core::schemeFig6P1());
    EXPECT_GT(two.averageFraction, three.averageFraction);
    EXPECT_GT(three.averageFraction, four.averageFraction);
}

} // namespace
} // namespace ebda
