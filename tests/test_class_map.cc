/**
 * @file
 * Unit tests for the channel-class lowering (ClassMap).
 */

#include <gtest/gtest.h>

#include "cdg/class_map.hh"
#include "core/catalog.hh"

namespace ebda::cdg {
namespace {

using core::makeClass;
using core::Parity;
using core::Sign;

TEST(ClassMap, FullCoverageSingleVc2d)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    core::PartitionScheme scheme;
    scheme.add(core::Partition({makeClass(0, Sign::Pos),
                                makeClass(0, Sign::Neg),
                                makeClass(1, Sign::Neg)}));
    scheme.add(core::Partition({makeClass(1, Sign::Pos)}));
    const ClassMap map(net, scheme);

    EXPECT_EQ(map.numClasses(), 4u);
    EXPECT_EQ(map.numClassifiedChannels(), net.numChannels());
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        const ClassIndex k = map.classOf(c);
        ASSERT_NE(k, kUnclassified);
        EXPECT_TRUE(net.channelInClass(c, map.classAt(k)));
    }
}

TEST(ClassMap, PartitionIndexTracksSchemeOrder)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto scheme = core::schemeNorthLast();
    const ClassMap map(net, scheme);
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        const ClassIndex k = map.classOf(c);
        ASSERT_NE(k, kUnclassified);
        // Y+ channels live in partition 1, everything else in 0.
        const bool is_north =
            net.channelInClass(c, makeClass(1, Sign::Pos));
        EXPECT_EQ(map.partitionOf(k), is_north ? 1u : 0u);
    }
}

TEST(ClassMap, UnusedVcsStayUnclassified)
{
    const auto net = topo::Network::mesh({3, 3}, {2, 2});
    // Scheme only uses VC 0 of each direction.
    core::PartitionScheme scheme;
    scheme.add(core::Partition({makeClass(0, Sign::Pos, 0),
                                makeClass(0, Sign::Neg, 0),
                                makeClass(1, Sign::Neg, 0)}));
    scheme.add(core::Partition({makeClass(1, Sign::Pos, 0)}));
    const ClassMap map(net, scheme);
    EXPECT_EQ(map.numClassifiedChannels(), net.numChannels() / 2);
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        if (net.vcOf(c) == 1)
            EXPECT_EQ(map.classOf(c), kUnclassified);
        else
            EXPECT_NE(map.classOf(c), kUnclassified);
    }
}

TEST(ClassMap, ParitySchemePartitionsColumns)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const ClassMap map(net, core::schemeOddEven());
    EXPECT_EQ(map.numClassifiedChannels(), net.numChannels());
    for (topo::ChannelId c = 0; c < net.numChannels(); ++c) {
        const auto &lk = net.link(net.linkOf(c));
        const ClassIndex k = map.classOf(c);
        ASSERT_NE(k, kUnclassified);
        if (lk.dim == 1) {
            const bool even_col = net.coordAlong(lk.src, 0) % 2 == 0;
            EXPECT_EQ(map.classAt(k).parity,
                      even_col ? Parity::Even : Parity::Odd);
        }
    }
}

TEST(ClassMap, ChannelsOfClassInverse)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const ClassMap map(net, core::schemeNorthLast());
    std::size_t total = 0;
    for (ClassIndex k = 0;
         k < static_cast<ClassIndex>(map.numClasses()); ++k) {
        for (topo::ChannelId c : map.channelsOfClass(k))
            EXPECT_EQ(map.classOf(c), k);
        total += map.channelsOfClass(k).size();
    }
    EXPECT_EQ(total, map.numClassifiedChannels());
}

TEST(ClassMap, BareClassListConstructor)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const ClassMap map(net, core::ClassList{makeClass(0, Sign::Pos),
                                            makeClass(0, Sign::Neg)});
    EXPECT_EQ(map.numClasses(), 2u);
    // Only the 12 X channels (2 directions x 6 links) are classified.
    EXPECT_EQ(map.numClassifiedChannels(), 12u);
    for (ClassIndex k = 0; k < 2; ++k)
        EXPECT_EQ(map.partitionOf(k), 0u);
}

TEST(ClassMap, OverlappingClassesPanic)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const core::ClassList overlapping = {
        makeClass(1, Sign::Pos),
        core::makeParityClass(1, Sign::Pos, 0, Parity::Even)};
    EXPECT_DEATH(ClassMap(net, overlapping), "not disjoint");
}

TEST(ClassMap, TorusWrapChannelsJoinOppositeClass)
{
    const auto net = topo::Network::torus({4, 4}, {1, 1});
    const ClassMap map(net, core::schemeNorthLast());
    const auto wrap = net.linkFrom(net.node({3, 0}), 0, Sign::Pos);
    ASSERT_TRUE(wrap.has_value());
    const ClassIndex k = map.classOf(net.channel(*wrap, 0));
    ASSERT_NE(k, kUnclassified);
    EXPECT_EQ(map.classAt(k), makeClass(0, Sign::Neg));
}

} // namespace
} // namespace ebda::cdg
