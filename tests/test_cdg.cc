/**
 * @file
 * Unit tests for the Dally oracle: turn-level and relation-level channel
 * dependency graphs, witnesses, and the Theorem 1-3 cross-validation on
 * concrete networks.
 */

#include <gtest/gtest.h>

#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/catalog.hh"
#include "core/enumerate.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"

namespace ebda::cdg {
namespace {

using core::makeClass;
using core::Sign;

TEST(TurnCdg, CatalogSchemesAreDeadlockFreeOnMesh)
{
    const auto net = topo::Network::mesh({5, 5}, {2, 2});
    for (const auto &scheme :
         {core::schemeFig6P1(), core::schemeFig6P2(), core::schemeFig6P3(),
          core::schemeFig6P4(), core::schemeFig6P5(),
          core::schemeNorthLast(), core::schemeFig7b(),
          core::schemeFig7c(), core::schemeOddEven(),
          core::schemeHamiltonian()}) {
        const auto report = checkDeadlockFree(net, scheme);
        EXPECT_TRUE(report.deadlockFree)
            << scheme.toString() << " witness size "
            << report.witness.size();
        EXPECT_GT(report.numDependencies, 0u);
    }
}

TEST(TurnCdg, AllEightTurnsFormCycleWithWitness)
{
    // Sanity of the oracle itself: permitting every turn must produce a
    // cyclic CDG, and the witness must be a real channel cycle.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto classes = core::classes2d();
    std::vector<std::pair<core::ChannelClass, core::ChannelClass>> all;
    for (const auto &a : classes)
        for (const auto &b : classes)
            if (a.dim != b.dim)
                all.emplace_back(a, b);
    const auto turns = core::TurnSet::fromExplicit(classes, all);
    const ClassMap map(net, classes);
    const auto report = checkDeadlockFree(net, map, turns);
    EXPECT_FALSE(report.deadlockFree);
    EXPECT_GE(report.witness.size(), 4u);
}

TEST(TurnCdg, Theorem1ViolationDetectedOnConcreteNetwork)
{
    // A partition with two complete pairs is rejected by validate();
    // bypassing the theorems with an equivalent explicit turn set shows
    // the concrete CDG indeed carries a cycle.
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto classes = core::classes2d();
    std::vector<std::pair<core::ChannelClass, core::ChannelClass>> turns;
    for (const auto &a : classes)
        for (const auto &b : classes)
            if (!(a == b))
                turns.emplace_back(a, b); // one partition, every turn
    const auto set = core::TurnSet::fromExplicit(classes, turns);
    const ClassMap map(net, classes);
    EXPECT_FALSE(checkDeadlockFree(net, map, set).deadlockFree);
}

TEST(TurnCdg, MinimalConstructionsDeadlockFree)
{
    // Section 4: the merged minimum-channel schemes are deadlock-free
    // for n = 1..3 on concrete meshes.
    const auto net1 = topo::Network::mesh({8}, {1});
    EXPECT_TRUE(checkDeadlockFree(net1, core::mergedScheme(1))
                    .deadlockFree);
    const auto net2 = topo::Network::mesh({5, 5}, {1, 2});
    EXPECT_TRUE(checkDeadlockFree(net2, core::mergedScheme(2))
                    .deadlockFree);
    const auto net3 = topo::Network::mesh({4, 4, 4}, {2, 2, 4});
    EXPECT_TRUE(checkDeadlockFree(net3, core::mergedScheme(3))
                    .deadlockFree);
    EXPECT_TRUE(checkDeadlockFree(net3, core::schemeFig9b())
                    .deadlockFree);
    EXPECT_TRUE(checkDeadlockFree(net3, core::schemeFig9c())
                    .deadlockFree);
}

TEST(TurnCdg, RegionConstructionsDeadlockFree)
{
    const auto net2 = topo::Network::mesh({5, 5}, {2, 2});
    EXPECT_TRUE(checkDeadlockFree(net2, core::regionScheme(2))
                    .deadlockFree);
    const auto net3 = topo::Network::mesh({3, 3, 3}, {4, 4, 4});
    EXPECT_TRUE(checkDeadlockFree(net3, core::regionScheme(3))
                    .deadlockFree);
}

TEST(TurnCdg, TorusWrapAsUTurnDeadlockFree)
{
    // The Theorem-2 torus note: with wrap links classified as the
    // opposite direction, the merged scheme stays deadlock-free on a
    // torus.
    const auto net = topo::Network::torus({6, 6}, {1, 2});
    EXPECT_TRUE(checkDeadlockFree(net, core::mergedScheme(2))
                    .deadlockFree);
}

TEST(TurnCdg, TorusSameAsTravelIsCyclicWithoutDatelines)
{
    // Control: classifying wraps as the travel direction reintroduces
    // the ring cycle for the same scheme.
    const auto net = topo::Network::torus(
        {6, 6}, {1, 2}, topo::WrapClassification::SameAsTravel);
    EXPECT_FALSE(checkDeadlockFree(net, core::mergedScheme(2))
                     .deadlockFree);
}

TEST(TurnCdg, PartiallyConnected3dSchemeDeadlockFree)
{
    const auto net = topo::Network::partialMesh3d(
        {4, 4, 3}, {1, 2, 1}, {{0, 0}, {3, 3}});
    EXPECT_TRUE(checkDeadlockFree(net, core::schemePartial3d())
                    .deadlockFree);
}

TEST(TurnCdg, WitnessNamesAreChannelNames)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto classes = core::classes2d();
    std::vector<std::pair<core::ChannelClass, core::ChannelClass>> all;
    for (const auto &a : classes)
        for (const auto &b : classes)
            if (a.dim != b.dim)
                all.emplace_back(a, b);
    const auto set = core::TurnSet::fromExplicit(classes, all);
    const ClassMap map(net, classes);
    const auto report = checkDeadlockFree(net, map, set);
    ASSERT_FALSE(report.witness.empty());
    for (const auto &name : report.witness)
        EXPECT_NE(name.find("->"), std::string::npos);
}

TEST(RelationCdg, BaselinesDeadlockFree)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const routing::DimensionOrderRouting xy =
        routing::DimensionOrderRouting::xy(net);
    const routing::DimensionOrderRouting yx =
        routing::DimensionOrderRouting::yx(net);
    const routing::WestFirstRouting wf(net);
    const routing::NorthLastRouting nl(net);
    const routing::NegativeFirstRouting nf(net);
    const routing::OddEvenRouting oe(net);
    for (const cdg::RoutingRelation *r :
         std::initializer_list<const cdg::RoutingRelation *>{
             &xy, &yx, &wf, &nl, &nf, &oe}) {
        const auto report = checkDeadlockFree(*r);
        EXPECT_TRUE(report.deadlockFree) << r->name();
        const auto conn = checkConnectivity(*r);
        EXPECT_TRUE(conn.connected) << r->name();
    }
}

TEST(RelationCdg, DuatoRelationIsCyclicButConnected)
{
    // Duato's fully adaptive routing is deadlock-free by his theorem,
    // not Dally's: the raw dependency graph is cyclic by design.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive duato(net);
    EXPECT_FALSE(checkDeadlockFree(duato).deadlockFree);
    EXPECT_TRUE(checkConnectivity(duato).connected);
}

TEST(RelationCdg, EbDaRelationsMatchTurnOracle)
{
    // The relation CDG of an EbDa-derived routing is a subgraph of the
    // turn CDG, hence acyclic too.
    const auto net = topo::Network::mesh({5, 5}, {1, 2});
    for (const auto &scheme :
         {core::schemeFig7b(), core::schemeOddEven(),
          core::schemeNorthLast()}) {
        const routing::EbDaRouting r(net, scheme);
        const auto report = checkDeadlockFree(r);
        EXPECT_TRUE(report.deadlockFree) << scheme.toString();
    }
}

TEST(RelationCdg, UnrestrictedMinimalAdaptiveDeadlocks)
{
    // The classic counterexample: minimal fully adaptive routing with a
    // single VC and no turn restrictions has a cyclic CDG.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto classes = core::classes2d();
    std::vector<std::pair<core::ChannelClass, core::ChannelClass>> all;
    for (const auto &a : classes)
        for (const auto &b : classes)
            if (!(a == b))
                all.emplace_back(a, b);
    // (Turn-level check; the equivalent relation exists in test_sim.)
    const auto set = core::TurnSet::fromExplicit(classes, all);
    const ClassMap map(net, classes);
    EXPECT_FALSE(checkDeadlockFree(net, map, set).deadlockFree);
}

TEST(RelationCdg, DependencyCountsReported)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const routing::DimensionOrderRouting xy =
        routing::DimensionOrderRouting::xy(net);
    const auto report = checkDeadlockFree(xy);
    EXPECT_EQ(report.numChannels, net.numChannels());
    // XY on a 4x4 mesh: straight X, straight Y and X->Y turn deps exist.
    EXPECT_GT(report.numDependencies, 20u);
}

} // namespace
} // namespace ebda::cdg
