/**
 * @file
 * Unit tests for the routing relations: EbDa-derived routing in both
 * modes, the classical baselines, dateline torus routing, Up/Down and
 * Elevator-First — connectivity, deadlock freedom, and cross-checks
 * between independent implementations of the same algorithm.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cdg/adaptivity.hh"
#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "core/minimal.hh"
#include "routing/baselines.hh"
#include "routing/dateline.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "routing/elevator.hh"
#include "routing/updown.hh"

namespace ebda::routing {
namespace {

using cdg::checkConnectivity;
using cdg::checkDeadlockFree;
using cdg::kInjectionChannel;
using core::makeClass;
using core::Sign;

TEST(EbDaRouting, XySchemeMatchesDorCandidates)
{
    // The Figure 6(a) scheme must route identically to handcrafted XY
    // at every (state, dest) pair.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const EbDaRouting ebda(net, core::schemeFig6P1());
    const auto dor = DimensionOrderRouting::xy(net);

    for (topo::NodeId at = 0; at < net.numNodes(); ++at) {
        for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
            if (at == dest)
                continue;
            auto a = ebda.candidates(kInjectionChannel, at, at, dest);
            auto b = dor.candidates(kInjectionChannel, at, at, dest);
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            EXPECT_EQ(a, b) << "at " << at << " dest " << dest;
        }
    }
}

TEST(EbDaRouting, SurvivorPruningAvoidsOddEvenDeadEnd)
{
    // From (0,0) to (2,2): after an eastward hop to column 1 and then
    // east to column 2 (even), the EN turn would be illegal; the raw
    // candidate "east at (1,*) when dx == 1 and dy != 0" must be pruned.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const EbDaRouting oe(net, core::schemeOddEven());
    const topo::NodeId src = net.node({0, 0});
    const topo::NodeId dest = net.node({2, 2});

    // A packet on the eastward channel into (1,0) must not continue
    // east (dx would become 0 at an even column with dy != 0 while on
    // an X+ channel).
    const auto into_10 = net.linkFrom(net.node({0, 0}), 0, Sign::Pos);
    ASSERT_TRUE(into_10.has_value());
    const topo::ChannelId in = net.channel(*into_10, 0);
    const auto cands = oe.candidates(in, net.node({1, 0}), src, dest);
    for (topo::ChannelId c : cands) {
        EXPECT_NE(net.link(net.linkOf(c)).dst, net.node({2, 0}))
            << "pruning failed: eastward dead-end candidate kept";
    }
    EXPECT_FALSE(cands.empty());
}

TEST(EbDaRouting, ConnectedAndDeadlockFreeAcrossSchemes)
{
    const auto net = topo::Network::mesh({5, 5}, {2, 2});
    for (const auto &scheme :
         {core::schemeFig6P1(), core::schemeFig6P3(),
          core::schemeNorthLast(), core::schemeFig6P4(),
          core::schemeFig7b(), core::schemeFig7c(),
          core::schemeOddEven(), core::regionScheme(2)}) {
        const EbDaRouting r(net, scheme);
        EXPECT_TRUE(checkConnectivity(r).connected) << r.name();
        EXPECT_TRUE(checkDeadlockFree(r).deadlockFree) << r.name();
    }
}

TEST(EbDaRouting, ShortestStateModeOnMeshIsConnected)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const EbDaRouting r(net, core::schemeFig7b(), {},
                        EbDaRouting::Mode::ShortestState);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(EbDaRouting, TorusShortestStateConnectedAndDeadlockFree)
{
    // The Theorem-2 torus treatment: wrap traversals are U-turns; the
    // two-VC merged scheme reaches every destination (sometimes via
    // non-minimal detours) with an acyclic CDG.
    const auto net = topo::Network::torus({6, 6}, {2, 2});
    core::PartitionScheme scheme;
    scheme.add(core::Partition({makeClass(1, Sign::Pos, 0),
                                makeClass(1, Sign::Neg, 0),
                                makeClass(0, Sign::Pos, 0)}));
    scheme.add(core::Partition({makeClass(1, Sign::Pos, 1),
                                makeClass(1, Sign::Neg, 1),
                                makeClass(0, Sign::Neg, 0)}));
    scheme.add(core::Partition({makeClass(0, Sign::Pos, 1),
                                makeClass(0, Sign::Neg, 1)}));
    const EbDaRouting r(net, scheme, {},
                        EbDaRouting::Mode::ShortestState);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(EbDaRouting, StateDistanceMonotone)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const EbDaRouting r(net, core::schemeFig7b(), {},
                        EbDaRouting::Mode::ShortestState);
    const topo::NodeId dest = net.node({3, 3});
    for (topo::NodeId at = 0; at < net.numNodes(); ++at) {
        if (at == dest)
            continue;
        for (topo::ChannelId c :
             r.candidates(kInjectionChannel, at, at, dest)) {
            const auto d = r.stateDistance(c, dest);
            ASSERT_NE(d, UINT32_MAX);
            for (topo::ChannelId c2 :
                 r.candidates(c, net.link(net.linkOf(c)).dst, at, dest)) {
                EXPECT_EQ(r.stateDistance(c2, dest), d - 1);
            }
        }
    }
}

TEST(Baselines, WestFirstWestHopsExclusive)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const WestFirstRouting wf(net);
    // dest to the south-west: only W until the column matches.
    const auto cands = wf.candidates(kInjectionChannel, net.node({4, 4}),
                                     net.node({4, 4}), net.node({1, 2}));
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(net.link(net.linkOf(cands[0])).dst, net.node({3, 4}));
    // dest to the north-east: both E and N available.
    EXPECT_EQ(wf.candidates(kInjectionChannel, net.node({0, 0}),
                            net.node({0, 0}), net.node({2, 2}))
                  .size(),
              2u);
}

TEST(Baselines, NorthLastOnlyWhenSoleProductive)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const NorthLastRouting nl(net);
    // North needed and east too: east only.
    const auto c1 = nl.candidates(kInjectionChannel, net.node({0, 0}),
                                  net.node({0, 0}), net.node({2, 2}));
    ASSERT_EQ(c1.size(), 1u);
    EXPECT_EQ(net.link(net.linkOf(c1[0])).dst, net.node({1, 0}));
    // Only north remains: north allowed.
    const auto c2 = nl.candidates(kInjectionChannel, net.node({2, 0}),
                                  net.node({2, 0}), net.node({2, 2}));
    ASSERT_EQ(c2.size(), 1u);
    EXPECT_EQ(net.link(net.linkOf(c2[0])).dst, net.node({2, 1}));
}

TEST(Baselines, NegativeFirstOrdering)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const NegativeFirstRouting nf(net);
    // Mixed signs: negative hops first (here W), positives withheld.
    const auto c = nf.candidates(kInjectionChannel, net.node({3, 1}),
                                 net.node({3, 1}), net.node({1, 3}));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(net.link(net.linkOf(c[0])).dst, net.node({2, 1}));
    // All-positive remainder: both positive directions adaptive.
    EXPECT_EQ(nf.candidates(kInjectionChannel, net.node({0, 0}),
                            net.node({0, 0}), net.node({2, 2}))
                  .size(),
              2u);
}

TEST(Baselines, OddEvenAgainstEbDaOddEvenAdaptivenessParity)
{
    // Chiu's closed form and the EbDa parity-partition derivation must
    // agree on reachability; candidate sets may differ slightly (Chiu
    // forbids some turns pre-emptively) but both stay connected and
    // deadlock-free — and EbDa's is at least as permissive on average.
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const OddEvenRouting chiu(net);
    const EbDaRouting ebda(net, core::schemeOddEven());

    EXPECT_TRUE(checkConnectivity(chiu).connected);
    EXPECT_TRUE(checkConnectivity(ebda).connected);
    EXPECT_TRUE(checkDeadlockFree(chiu).deadlockFree);
    EXPECT_TRUE(checkDeadlockFree(ebda).deadlockFree);

    std::size_t chiu_options = 0;
    std::size_t ebda_options = 0;
    for (topo::NodeId s = 0; s < net.numNodes(); ++s) {
        for (topo::NodeId d = 0; d < net.numNodes(); ++d) {
            if (s == d)
                continue;
            chiu_options +=
                chiu.candidates(kInjectionChannel, s, s, d).size();
            ebda_options +=
                ebda.candidates(kInjectionChannel, s, s, d).size();
        }
    }
    EXPECT_GE(ebda_options, chiu_options);
}

TEST(Dateline, TorusDorConnectedAndDeadlockFree)
{
    const auto net = topo::Network::torus(
        {6, 6}, {2, 2}, topo::WrapClassification::SameAsTravel);
    const TorusDatelineRouting r(net);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(Dateline, VcSwitchesAtWrap)
{
    const auto net = topo::Network::torus(
        {6, 6}, {2, 2}, topo::WrapClassification::SameAsTravel);
    const TorusDatelineRouting r(net);
    // (5,0) -> (1,0): the first hop crosses the wrap and must use VC 1.
    const auto c = r.candidates(kInjectionChannel, net.node({5, 0}),
                                net.node({5, 0}), net.node({1, 0}));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_TRUE(net.link(net.linkOf(c[0])).wrap);
    EXPECT_EQ(net.vcOf(c[0]), 1);
    // Continuing east at (0,0) stays on VC 1.
    const auto c2 = r.candidates(c[0], net.node({0, 0}), net.node({5, 0}),
                                 net.node({1, 0}));
    ASSERT_EQ(c2.size(), 1u);
    EXPECT_EQ(net.vcOf(c2[0]), 1);
}

TEST(UpDown, MeshConnectedAndDeadlockFree)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const UpDownRouting r(net);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(UpDown, PartialMesh3dConnectedAndDeadlockFree)
{
    const auto net = topo::Network::partialMesh3d(
        {3, 3, 3}, {1, 1, 1}, {{1, 1}});
    const UpDownRouting r(net);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(UpDown, DownPhaseNeverGoesUp)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const UpDownRouting r(net);
    for (topo::LinkId l = 0; l < net.numLinks(); ++l) {
        if (r.isUp(l))
            continue;
        const topo::ChannelId in = net.channel(l, 0);
        const topo::NodeId at = net.link(l).dst;
        for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
            if (dest == at)
                continue;
            for (topo::ChannelId c : r.candidates(in, at, at, dest))
                EXPECT_FALSE(r.isUp(net.linkOf(c)));
        }
    }
}

TEST(ElevatorFirst, ConnectedAndDeadlockFree)
{
    const std::vector<std::pair<int, int>> elevators = {{0, 0}, {2, 2}};
    const auto net = topo::Network::partialMesh3d({3, 3, 3}, {2, 2, 1},
                                                  elevators);
    const ElevatorFirstRouting r(net, elevators);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
}

TEST(ElevatorFirst, UsesNearestElevator)
{
    const std::vector<std::pair<int, int>> elevators = {{0, 0}, {3, 3}};
    const auto net = topo::Network::partialMesh3d({4, 4, 2}, {2, 2, 1},
                                                  elevators);
    const ElevatorFirstRouting r(net, elevators);
    EXPECT_EQ(r.elevatorFor(net.node({0, 1, 0})), std::make_pair(0, 0));
    EXPECT_EQ(r.elevatorFor(net.node({3, 2, 0})), std::make_pair(3, 3));
}

TEST(ElevatorFirst, PostVerticalUsesVc1)
{
    const std::vector<std::pair<int, int>> elevators = {{1, 1}};
    const auto net = topo::Network::partialMesh3d({3, 3, 2}, {2, 2, 1},
                                                  elevators);
    const ElevatorFirstRouting r(net, elevators);
    // Packet arriving at the top of the elevator heading to (2,1,1):
    // next hop is XY on VC 1.
    const auto up = net.linkFrom(net.node({1, 1, 0}), 2, Sign::Pos);
    ASSERT_TRUE(up.has_value());
    const auto c =
        r.candidates(net.channel(*up, 0), net.node({1, 1, 1}),
                     net.node({0, 0, 0}), net.node({2, 1, 1}));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(net.vcOf(c[0]), 1);
    EXPECT_EQ(net.link(net.linkOf(c[0])).dim, 0);
}

TEST(EbDaRouting, Partial3dShortestStateWithCompatibleElevators)
{
    // The Section 6.3 scheme on a partially connected 3D mesh with
    // corner elevators: the ShortestState mode finds legal (possibly
    // detoured) paths for every pair and stays deadlock-free.
    const std::vector<std::pair<int, int>> elevators = {
        {0, 0}, {0, 2}, {2, 0}, {2, 2}};
    const auto net = topo::Network::partialMesh3d({3, 3, 2}, {1, 2, 1},
                                                  elevators);
    const EbDaRouting r(net, core::schemePartial3d(), {},
                        EbDaRouting::Mode::ShortestState);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);
    EXPECT_TRUE(checkConnectivity(r).connected);
}

TEST(EbDaRouting, PlanarAdaptive3dSoundConnectedAndPartiallyAdaptive)
{
    // Planar-Adaptive as an EbDa scheme: deadlock-free, connected,
    // strictly between dimension-order and fully adaptive.
    const auto net = topo::Network::mesh({3, 3, 3}, {2, 3, 4});
    const auto planar = core::schemePlanarAdaptive3d();
    EXPECT_TRUE(cdg::checkDeadlockFree(net, planar).deadlockFree);

    const EbDaRouting r(net, planar);
    EXPECT_TRUE(checkConnectivity(r).connected);
    EXPECT_TRUE(checkDeadlockFree(r).deadlockFree);

    const auto planar_adapt = cdg::measureAdaptiveness(net, planar);
    const auto full_adapt =
        cdg::measureAdaptiveness(net, core::schemeFig9b());
    // XY Z dimension order as a scheme: singleton chain.
    core::PartitionScheme dor;
    for (std::uint8_t d = 0; d < 3; ++d) {
        dor.add(core::Partition({makeClass(d, Sign::Pos)}));
        dor.add(core::Partition({makeClass(d, Sign::Neg)}));
    }
    const auto dor_adapt = cdg::measureAdaptiveness(net, dor);

    EXPECT_TRUE(full_adapt.fullyAdaptive);
    EXPECT_FALSE(planar_adapt.fullyAdaptive);
    EXPECT_GT(planar_adapt.averageFraction, dor_adapt.averageFraction);
    EXPECT_LT(planar_adapt.averageFraction, full_adapt.averageFraction);
    EXPECT_FALSE(planar_adapt.disconnectedMinimal);
}

TEST(EbDaRouting, PlanarAdaptiveGeneratorMatchesHandBuilt3d)
{
    EXPECT_EQ(core::schemePlanarAdaptiveNd(3).canonicalKey(),
              core::schemePlanarAdaptive3d().canonicalKey());
}

TEST(EbDaRouting, PlanarAdaptiveNdSweep)
{
    // n = 2..4: valid, deadlock-free and connected on small meshes;
    // VC budget 2 / 3...3 / 1.
    for (std::uint8_t n = 2; n <= 4; ++n) {
        const auto scheme = core::schemePlanarAdaptiveNd(n);
        EXPECT_TRUE(scheme.validate().ok);
        EXPECT_EQ(scheme.size(), 2u * (n - 1));

        auto vcs = core::vcsRequired(scheme);
        EXPECT_EQ(vcs.front(), 2);
        EXPECT_EQ(vcs.back(), 1);
        for (std::size_t d = 1; d + 1 < vcs.size(); ++d)
            EXPECT_EQ(vcs[d], 3);

        const auto net =
            topo::Network::mesh(std::vector<int>(n, 3), vcs);
        EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree)
            << scheme.toString();
        const EbDaRouting r(net, scheme);
        EXPECT_TRUE(checkConnectivity(r).connected) << scheme.toString();
    }
}

TEST(DuatoRouting, CandidateStructure)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const DuatoFullyAdaptive r(net);
    // Two productive dims: 1 adaptive VC each + 1 escape on the lowest
    // unresolved dimension = 3 candidates.
    const auto c = r.candidates(kInjectionChannel, net.node({0, 0}),
                                net.node({0, 0}), net.node({2, 2}));
    EXPECT_EQ(c.size(), 3u);
    std::size_t escapes = 0;
    for (topo::ChannelId ch : c)
        if (r.isEscape(ch))
            ++escapes;
    EXPECT_EQ(escapes, 1u);
}

} // namespace
} // namespace ebda::routing
