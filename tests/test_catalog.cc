/**
 * @file
 * Unit tests for the catalogue of paper schemes and the classification
 * of extracted turn sets against the classical 2D turn models —
 * reproducing the Figure 6 identifications and the Table 4 Odd-Even
 * turn list.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/catalog.hh"

namespace ebda::core {
namespace {

TEST(Catalog, AllSchemesValidate)
{
    for (const auto &s :
         {schemeFig6P1(), schemeFig6P2(), schemeFig6P3(), schemeFig6P4(),
          schemeFig6P5(), schemeNorthLast(), schemeFig7b(), schemeFig7c(),
          schemeFig9b(), schemeFig9c(), schemeOddEven(),
          schemeHamiltonian(), schemePartial3d()}) {
        EXPECT_TRUE(s.validate().ok) << s.toString();
    }
}

TEST(Catalog, ReferenceTurnSets)
{
    EXPECT_EQ(allTurns2d().size(), 8u);
    EXPECT_EQ(xyTurns().size(), 4u);
    EXPECT_EQ(westFirstTurns().size(), 6u);
    EXPECT_EQ(northLastTurns().size(), 6u);
    EXPECT_EQ(negativeFirstTurns().size(), 6u);
    // Each 6-turn model removes exactly two turns from the full set.
    for (const auto &model :
         {westFirstTurns(), northLastTurns(), negativeFirstTurns()}) {
        for (const auto &t : model)
            EXPECT_TRUE(allTurns2d().count(t));
    }
    // West-First prohibits NW and SW.
    EXPECT_FALSE(westFirstTurns().count("NW"));
    EXPECT_FALSE(westFirstTurns().count("SW"));
    // North-Last prohibits NE and NW.
    EXPECT_FALSE(northLastTurns().count("NE"));
    EXPECT_FALSE(northLastTurns().count("NW"));
    // Negative-First prohibits ES and NW (positive-to-negative turns).
    EXPECT_FALSE(negativeFirstTurns().count("ES"));
    EXPECT_FALSE(negativeFirstTurns().count("NW"));
}

TEST(Catalog, Figure6Classification)
{
    // The paper's identifications: P1 = XY, P3 = West-First,
    // P4 = Negative-First, and the Theorem-3 example = North-Last.
    EXPECT_EQ(classify2dScheme(schemeFig6P1()), "XY");
    EXPECT_EQ(classify2dScheme(schemeFig6P3()), "West-First");
    EXPECT_EQ(classify2dScheme(schemeFig6P4()), "Negative-First");
    EXPECT_EQ(classify2dScheme(schemeNorthLast()), "North-Last");
    // P2 is partially adaptive and matches no classical model.
    EXPECT_EQ(classify2dScheme(schemeFig6P2()), std::nullopt);
}

TEST(Catalog, Figure6P5VcsAddNoAdaptiveness)
{
    // P5 adds VCs inside PB: the direction-level turns stay West-First.
    EXPECT_EQ(classify2dScheme(schemeFig6P5()), "West-First");
}

TEST(Catalog, Figure7SchemesAreFullTurnSets)
{
    // Both minimum-channel designs allow all eight direction-level
    // turns (fully adaptive in every region).
    for (const auto &scheme : {schemeFig7b(), schemeFig7c()}) {
        const auto set = TurnSet::extract(scheme);
        EXPECT_EQ(directionTurns(set), allTurns2d()) << scheme.toString();
    }
}

TEST(Catalog, Figure9bMatchesPaperVcBudget)
{
    const auto scheme = schemeFig9b();
    ASSERT_EQ(scheme.size(), 4u);
    EXPECT_EQ(scheme.numClasses(), 16u);
    // 2, 2 and 4 VCs along X, Y, Z.
    int max_vc[3] = {0, 0, 0};
    for (const auto &c : scheme.allClasses())
        max_vc[c.dim] = std::max(max_vc[c.dim], static_cast<int>(c.vc) + 1);
    EXPECT_EQ(max_vc[0], 2);
    EXPECT_EQ(max_vc[1], 2);
    EXPECT_EQ(max_vc[2], 4);
}

TEST(Catalog, OddEvenTurnsMatchTable4)
{
    // Table 4: PA turns WNe, WSe, NeW, SeW; PB turns ENo, ESo, NoE, SoE;
    // transition turns WNo, WSo, NeE, SeE.
    const auto set = TurnSet::extract(schemeOddEven());
    std::set<std::string> names90;
    for (const auto &t : set.turns())
        if (t.kind == TurnKind::Turn90)
            names90.insert(t.from.compass(false) + t.to.compass(false));

    const std::set<std::string> expected = {
        "WNe", "WSe", "NeW", "SeW", // in PA
        "ENo", "ESo", "NoE", "SoE", // in PB
        "WNo", "WSo", "NeE", "SeE", // PA -> PB transition
    };
    EXPECT_EQ(names90, expected);

    // Rule 1: no EN/ES at even columns; Rule 2: no NW/SW at odd columns.
    EXPECT_FALSE(names90.count("ENe"));
    EXPECT_FALSE(names90.count("ESe"));
    EXPECT_FALSE(names90.count("NoW"));
    EXPECT_FALSE(names90.count("SoW"));
}

TEST(Catalog, OddEvenUITurns)
{
    // Table 4 last column: one U-turn orientation per column parity plus
    // the (geometrically unusable) even->odd transitions.
    const auto set = TurnSet::extract(schemeOddEven());
    EXPECT_GT(set.count(TurnKind::UTurn) + set.count(TurnKind::ITurn), 0u);
    // NeSe or SeNe (numbering order): exactly one of the two.
    const auto ne = makeParityClass(1, Sign::Pos, 0, Parity::Even);
    const auto se = makeParityClass(1, Sign::Neg, 0, Parity::Even);
    EXPECT_NE(set.allows(ne, se), set.allows(se, ne));
}

TEST(Catalog, HamiltonianTwelveTurns)
{
    // Section 6.2: the two-partition Hamiltonian scheme allows twelve
    // 90-degree turns (the eight of the dual-path strategy plus four).
    const auto set = TurnSet::extract(schemeHamiltonian());
    EXPECT_EQ(set.count(TurnKind::Turn90), 12u);
}

TEST(Catalog, Partial3dThirtyTurns)
{
    // Table 5: thirty 90-degree turns (ten per partition, ten by
    // transition). The paper quotes "six U- and I-turns"; the full
    // Theorem-2/3 extraction yields six U-turns plus two I-turns
    // (Y1->Y2 same-direction VC transitions) — see EXPERIMENTS.md.
    const auto set = TurnSet::extract(schemePartial3d());
    EXPECT_EQ(set.count(TurnKind::Turn90), 30u);
    EXPECT_EQ(set.count(TurnKind::UTurn), 6u);
    EXPECT_EQ(set.count(TurnKind::ITurn), 2u);
}

TEST(Catalog, Partial3dPerPartitionTurnCounts)
{
    const auto set = TurnSet::extract(schemePartial3d());
    auto count90 = [](const std::vector<Turn> &turns) {
        std::size_t n = 0;
        for (const auto &t : turns)
            if (t.kind == TurnKind::Turn90)
                ++n;
        return n;
    };
    EXPECT_EQ(count90(set.turnsBetween(0, 0)), 10u);
    EXPECT_EQ(count90(set.turnsBetween(1, 1)), 10u);
    EXPECT_EQ(count90(set.turnsBetween(0, 1)), 10u);
}

TEST(Catalog, PlanarAdaptive3dStructure)
{
    const auto scheme = schemePlanarAdaptive3d();
    ASSERT_EQ(scheme.size(), 4u);
    EXPECT_TRUE(scheme.validate().ok);
    EXPECT_EQ(scheme.numClasses(), 12u);
    // Chien-Kim VC budget: (2, 3, 1).
    int max_vc[3] = {0, 0, 0};
    for (const auto &c : scheme.allClasses())
        max_vc[c.dim] = std::max(max_vc[c.dim], static_cast<int>(c.vc) + 1);
    EXPECT_EQ(max_vc[0], 2);
    EXPECT_EQ(max_vc[1], 3);
    EXPECT_EQ(max_vc[2], 1);
    // Each partition: one complete pair plus one single direction.
    for (const auto &p : scheme.partitions()) {
        EXPECT_EQ(p.size(), 3u);
        EXPECT_EQ(p.completePairCount(), 1u);
    }
}

TEST(Catalog, DirectionTurnsErasesVcAndParity)
{
    const auto set = TurnSet::extract(schemeFig6P5());
    const auto dirs = directionTurns(set);
    for (const auto &d : dirs)
        EXPECT_EQ(d.size(), 2u) << d;
}

} // namespace
} // namespace ebda::core
