/**
 * @file
 * Unit tests for the turn calculus: classification, Theorem 1/2/3
 * extraction (Figures 3, 4, 5), counting identities, explicit sets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/turns.hh"

namespace ebda::core {
namespace {

ChannelClass
cc(std::uint8_t d, Sign s, std::uint8_t v = 0)
{
    return makeClass(d, s, v);
}

bool
hasTurn(const TurnSet &set, const ChannelClass &from,
        const ChannelClass &to)
{
    return set.allows(from, to);
}

TEST(ClassifyTurn, Kinds)
{
    EXPECT_EQ(classifyTurn(cc(0, Sign::Pos), cc(1, Sign::Pos)),
              TurnKind::Turn90);
    EXPECT_EQ(classifyTurn(cc(0, Sign::Pos), cc(0, Sign::Neg)),
              TurnKind::UTurn);
    EXPECT_EQ(classifyTurn(cc(0, Sign::Pos, 0), cc(0, Sign::Pos, 1)),
              TurnKind::ITurn);
    EXPECT_EQ(classifyTurn(cc(0, Sign::Pos, 0), cc(0, Sign::Neg, 1)),
              TurnKind::UTurn);
}

TEST(ClassifyTurn, NamesAndStrings)
{
    EXPECT_EQ(toString(TurnKind::Turn90), "90");
    EXPECT_EQ(toString(TurnKind::UTurn), "U");
    EXPECT_EQ(toString(TurnKind::ITurn), "I");
}

TEST(TurnExtraction, Figure3ThreeChannelPartition)
{
    // P = {X+ X- Y-}: the formed 90-degree turns are WS, SE, ES, SW.
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg),
                     cc(1, Sign::Neg)}));
    const TurnSet set = TurnSet::extract(s);

    EXPECT_EQ(set.count(TurnKind::Turn90), 4u);
    EXPECT_TRUE(hasTurn(set, cc(0, Sign::Pos), cc(1, Sign::Neg)));  // ES
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Neg), cc(0, Sign::Pos)));  // SE
    EXPECT_TRUE(hasTurn(set, cc(0, Sign::Neg), cc(1, Sign::Neg)));  // WS
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Neg), cc(0, Sign::Neg)));  // SW
    // The missing north direction forms no turn.
    EXPECT_FALSE(hasTurn(set, cc(0, Sign::Pos), cc(1, Sign::Pos)));

    // Theorem 2: exactly one U-turn along the paired dimension, oriented
    // by the partition member order (X+ before X-).
    EXPECT_EQ(set.count(TurnKind::UTurn), 1u);
    EXPECT_TRUE(hasTurn(set, cc(0, Sign::Pos), cc(0, Sign::Neg)));
    EXPECT_FALSE(hasTurn(set, cc(0, Sign::Neg), cc(0, Sign::Pos)));
}

TEST(TurnExtraction, StraightAlwaysAllowedForKnownClasses)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos)}));
    const TurnSet set = TurnSet::extract(s);
    EXPECT_TRUE(set.allows(cc(0, Sign::Pos), cc(0, Sign::Pos)));
    // Unknown classes are never allowed, straight or otherwise.
    EXPECT_FALSE(set.allows(cc(1, Sign::Pos), cc(1, Sign::Pos)));
}

TEST(TurnExtraction, Figure4ThreeVcPairs)
{
    // Six channels of one dimension inside a partition: numbering them
    // 1..6 and tracing ascending gives n(n-1)/2 = 15 transitions,
    // 9 U-turns and 6 I-turns.
    Partition p;
    for (std::uint8_t v = 0; v < 3; ++v) {
        p.add(cc(1, Sign::Pos, v));
        p.add(cc(1, Sign::Neg, v));
    }
    PartitionScheme s;
    s.add(p);
    const TurnSet set = TurnSet::extract(s);

    EXPECT_EQ(set.size(), 15u);
    EXPECT_EQ(set.count(TurnKind::UTurn), 9u);
    EXPECT_EQ(set.count(TurnKind::ITurn), 6u);
    EXPECT_EQ(set.count(TurnKind::Turn90), 0u);

    // Ascending only: first channel reaches all five later ones.
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Pos, 0), cc(1, Sign::Neg, 2)));
    EXPECT_FALSE(hasTurn(set, cc(1, Sign::Neg, 2), cc(1, Sign::Pos, 0)));
}

TEST(TurnExtraction, UnpairedDimensionAllowsAllITurns)
{
    // Corollary of Theorem 2: with only one direction present, all
    // I-turns are allowed (both orders).
    Partition p({cc(1, Sign::Pos, 0), cc(1, Sign::Pos, 1),
                 cc(0, Sign::Pos)});
    PartitionScheme s;
    s.add(p);
    const TurnSet set = TurnSet::extract(s);
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Pos, 0), cc(1, Sign::Pos, 1)));
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Pos, 1), cc(1, Sign::Pos, 0)));
    EXPECT_EQ(set.count(TurnKind::ITurn), 2u);
}

TEST(TurnExtraction, Figure5NorthLastScheme)
{
    // {X+ X- Y-} -> {Y+}: Theorem 3 adds EN and WN plus the S->N U-turn.
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg),
                     cc(1, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));
    const TurnSet set = TurnSet::extract(s);

    EXPECT_EQ(set.count(TurnKind::Turn90), 6u);
    EXPECT_TRUE(hasTurn(set, cc(0, Sign::Pos), cc(1, Sign::Pos))); // EN
    EXPECT_TRUE(hasTurn(set, cc(0, Sign::Neg), cc(1, Sign::Pos))); // WN
    // No turn out of the north: NE/NW prohibited.
    EXPECT_FALSE(hasTurn(set, cc(1, Sign::Pos), cc(0, Sign::Pos)));
    EXPECT_FALSE(hasTurn(set, cc(1, Sign::Pos), cc(0, Sign::Neg)));
    // Theorem 3 U-turn S->N; the reverse would need a backward
    // transition.
    EXPECT_TRUE(hasTurn(set, cc(1, Sign::Neg), cc(1, Sign::Pos)));
    EXPECT_FALSE(hasTurn(set, cc(1, Sign::Pos), cc(1, Sign::Neg)));
    EXPECT_EQ(set.count(TurnKind::UTurn), 2u); // X+->X- and S->N
}

TEST(TurnExtraction, OptionsDisableTheorems)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg),
                     cc(1, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));

    TurnExtractionOptions no_t2;
    no_t2.theorem2 = false;
    const TurnSet set2 = TurnSet::extract(s, no_t2);
    EXPECT_FALSE(set2.allows(cc(0, Sign::Pos), cc(0, Sign::Neg)));
    // Theorem-3 U-turn survives (it comes from the transition).
    EXPECT_TRUE(set2.allows(cc(1, Sign::Neg), cc(1, Sign::Pos)));

    TurnExtractionOptions no_t3;
    no_t3.theorem3 = false;
    const TurnSet set3 = TurnSet::extract(s, no_t3);
    EXPECT_FALSE(set3.allows(cc(0, Sign::Pos), cc(1, Sign::Pos)));
    EXPECT_EQ(set3.countOrigin(TurnOrigin::Theorem3), 0u);

    TurnExtractionOptions no_cross_ui;
    no_cross_ui.crossUITurns = false;
    const TurnSet set4 = TurnSet::extract(s, no_cross_ui);
    EXPECT_FALSE(set4.allows(cc(1, Sign::Neg), cc(1, Sign::Pos)));
    EXPECT_TRUE(set4.allows(cc(0, Sign::Pos), cc(1, Sign::Pos)));
}

TEST(TurnExtraction, TransitionsToAllLaterVsNextOnly)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos)}));
    s.add(Partition({cc(0, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));

    const TurnSet all = TurnSet::extract(s);
    EXPECT_TRUE(all.allows(cc(0, Sign::Pos), cc(1, Sign::Pos)));

    TurnExtractionOptions next_only;
    next_only.transitionsToAllLater = false;
    const TurnSet next = TurnSet::extract(s, next_only);
    EXPECT_TRUE(next.allows(cc(0, Sign::Pos), cc(0, Sign::Neg)));
    EXPECT_FALSE(next.allows(cc(0, Sign::Pos), cc(1, Sign::Pos)));
}

TEST(TurnExtraction, InvalidSchemePanics)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg), cc(1, Sign::Pos),
                     cc(1, Sign::Neg)}));
    EXPECT_DEATH(TurnSet::extract(s), "invalid scheme");
}

TEST(TurnExtraction, ProvenanceBookkeeping)
{
    PartitionScheme s;
    s.add(Partition({cc(0, Sign::Pos), cc(0, Sign::Neg),
                     cc(1, Sign::Neg)}));
    s.add(Partition({cc(1, Sign::Pos)}));
    const TurnSet set = TurnSet::extract(s);

    EXPECT_EQ(set.countOrigin(TurnOrigin::Theorem1), 4u);
    EXPECT_EQ(set.countOrigin(TurnOrigin::Theorem2), 1u);
    EXPECT_EQ(set.countOrigin(TurnOrigin::Theorem3), 3u);
    EXPECT_EQ(set.turnsBetween(0, 0).size(), 5u);
    EXPECT_EQ(set.turnsBetween(0, 1).size(), 3u);
    EXPECT_TRUE(set.turnsBetween(1, 0).empty());
}

TEST(TurnExtraction, CompassTurnNames)
{
    PartitionScheme s;
    s.add(Partition({cc(1, Sign::Pos, 1), cc(0, Sign::Neg, 0)}));
    const TurnSet set = TurnSet::extract(s);
    ASSERT_EQ(set.size(), 2u);
    std::vector<std::string> names;
    for (const auto &t : set.turns())
        names.push_back(t.compassName());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names[0], "N2W1");
    EXPECT_EQ(names[1], "W1N2");
}

TEST(TurnSetExplicit, BuildsExactSet)
{
    const ClassList classes = {cc(0, Sign::Pos), cc(0, Sign::Neg),
                               cc(1, Sign::Pos), cc(1, Sign::Neg)};
    const TurnSet set = TurnSet::fromExplicit(
        classes, {{cc(0, Sign::Pos), cc(1, Sign::Pos)},
                  {cc(1, Sign::Pos), cc(0, Sign::Neg)}});
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.allows(cc(0, Sign::Pos), cc(1, Sign::Pos)));
    EXPECT_FALSE(set.allows(cc(1, Sign::Pos), cc(0, Sign::Pos)));
    EXPECT_TRUE(set.allows(cc(1, Sign::Neg), cc(1, Sign::Neg))); // straight
}

TEST(TurnSetExplicit, RejectsUnknownClasses)
{
    const ClassList classes = {cc(0, Sign::Pos)};
    EXPECT_DEATH(TurnSet::fromExplicit(
                     classes, {{cc(0, Sign::Pos), cc(1, Sign::Pos)}}),
                 "unknown class");
}

/** Parameterized sweep of the Figure-4 counting identity. */
class UICountIdentity
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(UICountIdentity, MatchesClosedFormAndExtraction)
{
    const auto [a, b] = GetParam();
    const std::size_t n = a + b;

    const UITurnCounts expected = expectedUICounts(a, b);
    EXPECT_EQ(expected.total(), n * (n - 1) / 2);

    // Build a partition with a positive and b negative Y classes
    // (interleaved, order is irrelevant for counts).
    Partition p;
    for (std::size_t i = 0; i < a; ++i)
        p.add(cc(1, Sign::Pos, static_cast<std::uint8_t>(i)));
    for (std::size_t i = 0; i < b; ++i)
        p.add(cc(1, Sign::Neg, static_cast<std::uint8_t>(i)));
    PartitionScheme s;
    s.add(p);
    const TurnSet set = TurnSet::extract(s);

    if (a > 0 && b > 0) {
        // Paired dimension: ascending numbering.
        EXPECT_EQ(set.count(TurnKind::UTurn), expected.uTurns);
        EXPECT_EQ(set.count(TurnKind::ITurn), expected.iTurns);
        EXPECT_EQ(set.size(), expected.total());
    } else {
        // Unpaired: all I-turns, both directions.
        EXPECT_EQ(set.count(TurnKind::UTurn), 0u);
        EXPECT_EQ(set.count(TurnKind::ITurn), n * (n - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UICountIdentity,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 3},
                      std::pair<std::size_t, std::size_t>{4, 2},
                      std::pair<std::size_t, std::size_t>{5, 5},
                      std::pair<std::size_t, std::size_t>{3, 0},
                      std::pair<std::size_t, std::size_t>{0, 4}));

TEST(ExpectedUICounts, PaperExample)
{
    // Figure 4: three VCs => nine U-turns and six I-turns.
    const auto counts = expectedUICounts(3, 3);
    EXPECT_EQ(counts.uTurns, 9u);
    EXPECT_EQ(counts.iTurns, 6u);
    EXPECT_EQ(counts.total(), 15u);
}

} // namespace
} // namespace ebda::core
