/**
 * @file
 * Tests for the k-ary n-cube scheme generators (Assumption 3 / the
 * Theorem-2 torus note): the dimension-major torus DOR scheme and the
 * adaptive 2D torus scheme, verified on concrete tori up to 3D, plus
 * the mesh-scheme-on-torus behaviour.
 */

#include <gtest/gtest.h>

#include "cdg/relation_cdg.hh"
#include "cdg/turn_cdg.hh"
#include "core/minimal.hh"
#include "core/torus.hh"
#include "routing/dateline.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace ebda {
namespace {

TEST(TorusSchemes, DorSchemeStructure)
{
    const auto scheme = core::torusDorScheme(3);
    EXPECT_EQ(scheme.size(), 6u);
    EXPECT_EQ(scheme.numClasses(), 12u);
    EXPECT_TRUE(scheme.validate().ok);
    for (const auto &p : scheme.partitions()) {
        EXPECT_EQ(p.size(), 2u);
        EXPECT_EQ(p.completePairCount(), 1u);
    }
}

TEST(TorusSchemes, DorSchemeDeadlockFreeOn2dTorus)
{
    const auto net = topo::Network::torus({6, 6}, {2, 2});
    EXPECT_TRUE(cdg::checkDeadlockFree(net, core::torusDorScheme(2))
                    .deadlockFree);
}

TEST(TorusSchemes, DorSchemeDeadlockFreeAndConnectedOn3dTorus)
{
    const auto net = topo::Network::torus({4, 4, 4}, {2, 2, 2});
    const auto scheme = core::torusDorScheme(3);
    EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree);

    const routing::EbDaRouting r(net, scheme, {},
                                 routing::EbDaRouting::Mode::
                                     ShortestState);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
    EXPECT_TRUE(cdg::checkDeadlockFree(r).deadlockFree);
}

TEST(TorusSchemes, AdaptiveScheme2dSoundAndConnected)
{
    const auto net = topo::Network::torus({8, 8}, {2, 2});
    const auto scheme = core::torusAdaptiveScheme2d();
    EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree);

    const routing::EbDaRouting r(net, scheme, {},
                                 routing::EbDaRouting::Mode::
                                     ShortestState);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
}

TEST(TorusSchemes, AdaptiveSchemeUsesTorusMinimalRoutes)
{
    // The adaptive scheme reaches the torus-minimal average route
    // length (every wrap usable), like the dateline baseline.
    const auto net = topo::Network::torus({8, 8}, {2, 2});
    const routing::EbDaRouting r(net, core::torusAdaptiveScheme2d(), {},
                                 routing::EbDaRouting::Mode::
                                     ShortestState);
    double sum = 0.0;
    std::size_t pairs = 0;
    for (topo::NodeId s = 0; s < net.numNodes(); ++s) {
        for (topo::NodeId d = 0; d < net.numNodes(); ++d) {
            if (s == d)
                continue;
            std::uint32_t best = UINT32_MAX;
            for (topo::ChannelId c :
                 r.candidates(cdg::kInjectionChannel, s, s, d)) {
                best = std::min(best, r.stateDistance(c, d));
            }
            ASSERT_NE(best, UINT32_MAX);
            // Never worse than +2 hops over torus-minimal for any pair.
            EXPECT_LE(static_cast<int>(best), net.distance(s, d) + 2);
            sum += best;
            ++pairs;
        }
    }
    EXPECT_NEAR(sum / static_cast<double>(pairs), 4.06, 0.1);
}

TEST(TorusSchemes, MeshMergedSchemeStillSoundOnTorus)
{
    // The Section-4 mesh construction remains deadlock-free on a torus
    // under wrap-as-opposite classification (wraps become restricted
    // U-turns); routing is connected, merely less wrap-friendly.
    const auto net = topo::Network::torus({5, 5}, {1, 2});
    const auto scheme = core::mergedScheme(2);
    EXPECT_TRUE(cdg::checkDeadlockFree(net, scheme).deadlockFree);
    const routing::EbDaRouting r(net, scheme, {},
                                 routing::EbDaRouting::Mode::
                                     ShortestState);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
}

TEST(TorusSchemes, SimulationOn3dTorus)
{
    const auto net = topo::Network::torus({4, 4, 4}, {2, 2, 2});
    const routing::EbDaRouting r(net, core::torusDorScheme(3), {},
                                 routing::EbDaRouting::Mode::
                                     ShortestState);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.seed = 17;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 40u);
}

TEST(TorusSchemes, DatelineBaselineAgreesOnRouteLengths)
{
    const auto ebda_net = topo::Network::torus({6, 6}, {2, 2});
    const auto dor_net = topo::Network::torus(
        {6, 6}, {2, 2}, topo::WrapClassification::SameAsTravel);
    const routing::EbDaRouting ebda(
        ebda_net, core::torusAdaptiveScheme2d(), {},
        routing::EbDaRouting::Mode::ShortestState);
    const routing::TorusDatelineRouting dateline(dor_net);

    // Spot-check a wrap-crossing pair: both routers take the short way.
    const topo::NodeId s = ebda_net.node({5, 0});
    const topo::NodeId d = ebda_net.node({1, 0});
    auto hops = [&](const cdg::RoutingRelation &r,
                    const topo::Network &net) {
        topo::ChannelId in = cdg::kInjectionChannel;
        topo::NodeId at = s;
        int count = 0;
        while (at != d && count < 20) {
            const auto c = r.candidates(in, at, s, d);
            EXPECT_FALSE(c.empty());
            if (c.empty())
                break;
            in = c.front();
            at = net.link(net.linkOf(in)).dst;
            ++count;
        }
        return count;
    };
    EXPECT_EQ(hops(dateline, dor_net), 2);
    EXPECT_EQ(hops(ebda, ebda_net), 2);
}

} // namespace
} // namespace ebda
