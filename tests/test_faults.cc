/**
 * @file
 * Fault-injection tests (the Theorem-2 note: "Enabling U-turns is
 * essentially important in fault-tolerant designs"): link removal,
 * rerouting in shortest-state mode, and the U-turn contribution to
 * post-fault connectivity.
 */

#include <gtest/gtest.h>

#include "cdg/relation_cdg.hh"
#include "core/catalog.hh"
#include "routing/ebda_routing.hh"
#include "routing/updown.hh"
#include "sim/simulator.hh"
#include "util/random.hh"

namespace ebda {
namespace {

using core::Sign;

TEST(FaultInjection, WithoutLinksRemovesExactly)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const topo::NodeId a = net.node({1, 1});
    const topo::NodeId b = net.node({2, 1});
    const auto broken = net.withoutLinks({{a, b}});
    EXPECT_EQ(broken.numLinks(), net.numLinks() - 1);
    EXPECT_FALSE(broken.linkFrom(a, 0, Sign::Pos).has_value());
    // The reverse direction survives.
    EXPECT_TRUE(broken.linkFrom(b, 0, Sign::Neg).has_value());
    // Channels recomputed consistently.
    EXPECT_EQ(broken.numChannels(), net.numChannels() - 1);
}

TEST(FaultInjection, RemovingNonexistentLinkIsNoop)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto same = net.withoutLinks({{net.node({0, 0}),
                                         net.node({2, 2})}});
    EXPECT_EQ(same.numLinks(), net.numLinks());
}

TEST(FaultInjection, ShortestStateReroutesAroundSingleFault)
{
    // Break one X link; the fully adaptive EbDa scheme in
    // shortest-state mode routes around it (survivor pruning in pure
    // minimal mode cannot: some pairs lose all minimal paths).
    const auto net = topo::Network::mesh({5, 5}, {1, 2});
    const auto broken = net.withoutLinks(
        {{net.node({2, 2}), net.node({3, 2})}});

    const routing::EbDaRouting rerouting(
        broken, core::schemeFig7b(), {},
        routing::EbDaRouting::Mode::ShortestState);
    EXPECT_TRUE(cdg::checkConnectivity(rerouting).connected);
    EXPECT_TRUE(cdg::checkDeadlockFree(rerouting).deadlockFree);
}

TEST(FaultInjection, UTurnsNeverReduceCoverage)
{
    // Disabling Theorem-2/3 U-/I-turns must never route MORE pairs
    // (monotonicity of the turn set), and deadlock freedom holds for
    // every fault pattern.
    Rng rng(77);
    for (int trial = 0; trial < 12; ++trial) {
        const auto net = topo::Network::mesh({4, 4}, {1, 2});
        // Fail both directions of two random physical links.
        std::vector<std::pair<topo::NodeId, topo::NodeId>> failed;
        for (int f = 0; f < 2; ++f) {
            const auto l = static_cast<topo::LinkId>(
                rng.nextBounded(net.numLinks()));
            failed.emplace_back(net.link(l).src, net.link(l).dst);
            failed.emplace_back(net.link(l).dst, net.link(l).src);
        }
        const auto broken = net.withoutLinks(failed);

        core::TurnExtractionOptions no_ui;
        no_ui.theorem2 = false;
        no_ui.crossUITurns = false;

        const routing::EbDaRouting full(
            broken, core::schemeFig7b(), {},
            routing::EbDaRouting::Mode::ShortestState);
        const routing::EbDaRouting restricted(
            broken, core::schemeFig7b(), no_ui,
            routing::EbDaRouting::Mode::ShortestState);

        auto routable = [&](const routing::EbDaRouting &r) {
            std::size_t ok = 0;
            for (topo::NodeId s = 0; s < broken.numNodes(); ++s) {
                for (topo::NodeId d = 0; d < broken.numNodes(); ++d) {
                    if (s == d)
                        continue;
                    if (!r.candidates(cdg::kInjectionChannel, s, s, d)
                             .empty()) {
                        ++ok;
                    }
                }
            }
            return ok;
        };
        EXPECT_GE(routable(full), routable(restricted));

        // Deadlock freedom is never sacrificed for coverage.
        EXPECT_TRUE(cdg::checkDeadlockFree(full).deadlockFree);
    }
}

TEST(FaultInjection, UTurnsUnlockTorusWrapShortcuts)
{
    // The concrete payoff of Theorem 2's U-turns (its "topologies with
    // wrap-around channels" note): on a torus, crossing a wrap link IS
    // a U-turn between the two direction classes. With U-turns the
    // router uses torus-minimal paths; without them every route must
    // stay inside the mesh region, so average path length grows while
    // connectivity survives (the long way around never needs a wrap).
    const auto net = topo::Network::torus({8, 8}, {2, 2});
    core::PartitionScheme scheme;
    scheme.add(core::Partition({core::makeClass(1, Sign::Pos, 0),
                                core::makeClass(1, Sign::Neg, 0),
                                core::makeClass(0, Sign::Pos, 0)}));
    scheme.add(core::Partition({core::makeClass(1, Sign::Pos, 1),
                                core::makeClass(1, Sign::Neg, 1),
                                core::makeClass(0, Sign::Neg, 0)}));
    scheme.add(core::Partition({core::makeClass(0, Sign::Pos, 1),
                                core::makeClass(0, Sign::Neg, 1)}));

    core::TurnExtractionOptions no_ui;
    no_ui.theorem2 = false;
    no_ui.crossUITurns = false;

    const routing::EbDaRouting with_ui(
        net, scheme, {}, routing::EbDaRouting::Mode::ShortestState);
    const routing::EbDaRouting without_ui(
        net, scheme, no_ui, routing::EbDaRouting::Mode::ShortestState);

    EXPECT_TRUE(cdg::checkConnectivity(with_ui).connected);
    EXPECT_TRUE(cdg::checkConnectivity(without_ui).connected);

    auto avg_route_length = [&](const routing::EbDaRouting &r) {
        double sum = 0.0;
        std::size_t pairs = 0;
        for (topo::NodeId s = 0; s < net.numNodes(); ++s) {
            for (topo::NodeId d = 0; d < net.numNodes(); ++d) {
                if (s == d)
                    continue;
                std::uint32_t best = UINT32_MAX;
                for (topo::ChannelId c :
                     r.candidates(cdg::kInjectionChannel, s, s, d)) {
                    best = std::min(best, r.stateDistance(c, d));
                }
                EXPECT_NE(best, UINT32_MAX);
                if (best != UINT32_MAX) {
                    sum += best;
                    ++pairs;
                }
            }
        }
        return sum / static_cast<double>(pairs);
    };

    const double len_with = avg_route_length(with_ui);
    const double len_without = avg_route_length(without_ui);
    // With U-turns the average route length reaches the torus minimum
    // (4.06 on 8x8). Without them only the straight-through-dateline
    // continuation is lost (wraps can still be *entered* via 90-degree
    // turns from the other dimension), so the gap is real but modest.
    EXPECT_NEAR(len_with, 4.06, 0.05);
    EXPECT_LT(len_with + 0.05, len_without);
}

TEST(FaultInjection, UpDownSurvivesFaultsOffTree)
{
    // Up/Down on a faulty mesh: rebuild the tree on the faulty network
    // and it stays connected as long as the network is.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto broken = net.withoutLinks(
        {{net.node({1, 1}), net.node({1, 2})},
         {net.node({1, 2}), net.node({1, 1})}});
    const routing::UpDownRouting r(broken);
    EXPECT_TRUE(cdg::checkConnectivity(r).connected);
    EXPECT_TRUE(cdg::checkDeadlockFree(r).deadlockFree);
}

TEST(FaultInjection, SimulationOnFaultyMeshDrains)
{
    const auto net = topo::Network::mesh({5, 5}, {1, 2});
    const auto broken = net.withoutLinks(
        {{net.node({2, 2}), net.node({3, 2})},
         {net.node({3, 2}), net.node({2, 2})}});
    const routing::EbDaRouting r(
        broken, core::schemeFig7b(), {},
        routing::EbDaRouting::Mode::ShortestState);
    const sim::TrafficGenerator gen(broken,
                                    sim::TrafficPattern::Uniform);
    sim::SimConfig cfg;
    cfg.injectionRate = 0.05;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.seed = 31;
    const auto result = runSimulation(broken, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 20u);
}

} // namespace
} // namespace ebda
