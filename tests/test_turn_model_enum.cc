/**
 * @file
 * Unit tests for the turn-model design-space enumeration (the Section 2
 * scalability argument and the Section 6.1 "12 of 16 deadlock-free"
 * cross-check).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cdg/turn_model_enum.hh"

namespace ebda::cdg {
namespace {

TEST(TurnModelSpace, PaperCombinationCounts)
{
    // 2D no VC: 2 cycles -> 16 combinations.
    const auto s2 = turnModelSpace(2, {1, 1});
    EXPECT_EQ(s2.numCycles, 2u);
    EXPECT_DOUBLE_EQ(s2.numCombinations, 16.0);

    // 2D one extra VC per dimension: 8 cycles -> 65,536.
    const auto s2v = turnModelSpace(2, {2, 2});
    EXPECT_EQ(s2v.numCycles, 8u);
    EXPECT_DOUBLE_EQ(s2v.numCombinations, 65536.0);

    // 3D no VC: 6 cycles -> 4,096 (the paper's prose says 29,696 with
    // the same "4^6" exponent; 4^6 = 4096).
    const auto s3 = turnModelSpace(3, {1, 1, 1});
    EXPECT_EQ(s3.numCycles, 6u);
    EXPECT_DOUBLE_EQ(s3.numCombinations, 4096.0);

    // 3D with one extra VC per dimension: 24 cycles.
    const auto s3v = turnModelSpace(3, {2, 2, 2});
    EXPECT_EQ(s3v.numCycles, 24u);
    EXPECT_DOUBLE_EQ(s3v.numCombinations, std::pow(4.0, 24.0));
}

TEST(AbstractCycles, TwoDStructure)
{
    const auto cycles = abstractCycles(2, {1, 1});
    ASSERT_EQ(cycles.size(), 2u);
    for (const auto &cycle : cycles) {
        EXPECT_EQ(cycle.dimA, 0);
        EXPECT_EQ(cycle.dimB, 1);
        // Four turns chaining head-to-tail back to the start.
        for (std::size_t t = 0; t < 4; ++t) {
            EXPECT_EQ(cycle.turns[t].second,
                      cycle.turns[(t + 1) % 4].first);
        }
    }
    EXPECT_NE(cycles[0].clockwise, cycles[1].clockwise);
}

TEST(AbstractCycles, VcChoicesMultiply)
{
    EXPECT_EQ(abstractCycles(2, {2, 3}).size(), 2u * 2 * 3);
    EXPECT_EQ(abstractCycles(3, {1, 1, 1}).size(), 6u);
    EXPECT_EQ(abstractCycles(4, {1, 1, 1, 1}).size(), 12u);
}

TEST(EnumerateTurnModels, TwelveOfSixteenDeadlockFree2d)
{
    // Glass-Ni via the oracle: of the 16 one-turn-per-cycle removals in
    // a 2D network, 12 are deadlock-free, and all 12 remain connected.
    const auto net = topo::Network::mesh({5, 5}, {1, 1});
    const auto result = enumerateTurnModels(net);
    EXPECT_EQ(result.combinations, 16u);
    EXPECT_EQ(result.deadlockFree, 12u);
    EXPECT_EQ(result.connected, 12u);
    EXPECT_EQ(result.distinctDeadlockFreeSets, 12u);
}

TEST(EnumerateTurnModels, ResultStableAcrossMeshSizes)
{
    // The verdicts must not depend on the verification mesh size (above
    // the minimum that can express the cycles).
    const auto net4 = topo::Network::mesh({4, 4}, {1, 1});
    const auto net6 = topo::Network::mesh({6, 6}, {1, 1});
    EXPECT_EQ(enumerateTurnModels(net4).deadlockFree,
              enumerateTurnModels(net6).deadlockFree);
}

TEST(EnumerateTurnModels, CapBoundsWork)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto result = enumerateTurnModels(net, 5);
    EXPECT_EQ(result.combinations, 5u);
    EXPECT_LE(result.deadlockFree, 5u);
}

TEST(EnumerateTurnModels, ThreeDimensionalFullSpacePinned)
{
    // Regression pin for the full 3D enumeration: of the 4096
    // one-turn-per-cycle combinations, 176 are deadlock-free (a number
    // the paper does not report; deterministic given the oracle).
    const auto net = topo::Network::mesh({3, 3, 3}, {1, 1, 1});
    const auto result = enumerateTurnModels(net);
    EXPECT_EQ(result.combinations, 4096u);
    EXPECT_EQ(result.deadlockFree, 176u);
    EXPECT_EQ(result.connected, 176u);
}

TEST(EnumerateTurnModels, ThreeDimensionalSubset)
{
    // First 256 of the 4096 3D combinations on a small mesh: the counts
    // must be internally consistent.
    const auto net = topo::Network::mesh({3, 3, 3}, {1, 1, 1});
    const auto result = enumerateTurnModels(net, 256);
    EXPECT_EQ(result.combinations, 256u);
    EXPECT_LE(result.connected, result.deadlockFree);
    EXPECT_LE(result.distinctDeadlockFreeSets, result.deadlockFree);
}

} // namespace
} // namespace ebda::cdg
