/**
 * @file
 * Property tests for the route-table compiler: a compiled table must
 * be indistinguishable from the virtual relation it flattened — same
 * candidate contents, same order — at every state a packet can occupy.
 *
 * "Every state" means every *reachable* (in, src, dest): the compiler
 * probes by BFS from the injection candidates, so unreachable rows are
 * deliberately empty (relations like EbDaRouting assert on unreachable
 * probe combinations; the runtime never queries them). The checker
 * here replays the same reachability closure through the virtual
 * relation and compares exhaustively on it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "routing/baselines.hh"
#include "routing/dateline.hh"
#include "routing/elevator.hh"
#include "routing/route_table.hh"
#include "sim/sim_json.hh"
#include "sim/simulator.hh"
#include "sweep/router_factory.hh"

namespace ebda::routing {
namespace {

using cdg::kInjectionChannel;

using Oracle = std::function<std::vector<topo::ChannelId>(
    topo::ChannelId, topo::NodeId, topo::NodeId, topo::NodeId)>;

Oracle
relationOracle(const cdg::RoutingRelation &rel)
{
    return [&rel](topo::ChannelId in, topo::NodeId at, topo::NodeId src,
                  topo::NodeId dest) {
        return rel.candidates(in, at, src, dest);
    };
}

topo::NodeId
headOf(const topo::Network &net, topo::ChannelId c)
{
    return net.link(net.linkOf(c)).dst;
}

/**
 * BFS the reachable states of `reach` per (src, dest) and compare the
 * table against `expect` at each one (both views, contents and order).
 * `reach` and `expect` differ only in the fault test, where rows were
 * compiled from the base relation and then filtered: reachability is
 * the base closure, expectation the degraded relation.
 * Returns the number of states compared.
 */
std::size_t
expectTableMatches(const RouteTable &table, const topo::Network &net,
                   const Oracle &reach, const Oracle &expect)
{
    std::vector<topo::ChannelId> scratch;
    std::vector<topo::ChannelId> got;
    std::size_t states = 0;

    const auto check = [&](topo::ChannelId in, topo::NodeId at,
                           topo::NodeId src, topo::NodeId dest) {
        const auto want = expect(in, at, src, dest);
        table.candidatesInto(in, at, src, dest, got);
        EXPECT_EQ(got, want) << "candidatesInto at in=" << in
                             << " at=" << at << " src=" << src
                             << " dest=" << dest;
        const auto view =
            table.candidatesView(in, at, src, dest, scratch);
        const std::vector<topo::ChannelId> viewed(view.begin(),
                                                  view.end());
        EXPECT_EQ(viewed, want) << "candidatesView at in=" << in
                                << " at=" << at << " src=" << src
                                << " dest=" << dest;
        ++states;
    };

    for (topo::NodeId src = 0; src < net.numNodes(); ++src) {
        for (topo::NodeId dest = 0; dest < net.numNodes(); ++dest) {
            if (dest == src)
                continue;
            std::vector<std::uint8_t> seen(net.numChannels(), 0);
            std::vector<topo::ChannelId> frontier;
            const auto push = [&](const std::vector<topo::ChannelId> &cs) {
                for (const topo::ChannelId c : cs) {
                    if (!seen[c]) {
                        seen[c] = 1;
                        frontier.push_back(c);
                    }
                }
            };
            check(kInjectionChannel, src, src, dest);
            push(reach(kInjectionChannel, src, src, dest));
            for (std::size_t i = 0; i < frontier.size(); ++i) {
                const topo::ChannelId in = frontier[i];
                const topo::NodeId at = headOf(net, in);
                if (at == dest)
                    continue; // ejects on arrival, never queried
                check(in, at, src, dest);
                push(reach(in, at, src, dest));
            }
        }
    }
    return states;
}

/** The sweep catalog, paired per topology family — the mesh baseline
 *  relations reject torus networks in their constructors. */
const std::vector<const char *> kMeshSpecs = {
    "xy",          "yx",       "west-first", "north-last",
    "negative-first", "odd-even", "duato",   "minimal",
    "fig7b",       "fig7c",    "region:4",   "merged:4",
};
const std::vector<const char *> kTorusSpecs = {
    "minimal", "fig7b", "fig7c", "region:4", "merged:4",
};

struct NetCase
{
    const char *name;
    topo::Network net;
    const std::vector<const char *> &specs;
};

std::vector<NetCase>
catalogNetworks()
{
    std::vector<NetCase> out;
    out.push_back(
        {"mesh4x4", topo::Network::mesh({4, 4}, {2, 2}), kMeshSpecs});
    out.push_back(
        {"mesh5x5", topo::Network::mesh({5, 5}, {2, 2}), kMeshSpecs});
    out.push_back(
        {"torus4x4", topo::Network::torus({4, 4}, {2, 2}), kTorusSpecs});
    return out;
}

TEST(RouteTable, CatalogRelationsCompileAndMatchVirtual)
{
    std::size_t compiledRelations = 0;
    for (const NetCase &nc : catalogNetworks()) {
        for (const char *spec : nc.specs) {
            std::string err;
            const auto rel = sweep::makeRouter(nc.net, spec, &err);
            if (!rel)
                continue; // spec not hostable on this network
            const RouteTable table(*rel);
            EXPECT_TRUE(table.compiled())
                << spec << " on " << nc.name
                << " fell back to the virtual path";
            EXPECT_GT(table.tableBytes(), 0u) << spec << " on " << nc.name;
            const auto oracle = relationOracle(*rel);
            const std::size_t states =
                expectTableMatches(table, nc.net, oracle, oracle);
            EXPECT_GT(states, nc.net.numNodes() * 2u)
                << spec << " on " << nc.name;
            ++compiledRelations;
        }
    }
    // The catalog must broadly host on these networks — guard against
    // makeRouter silently rejecting everything.
    EXPECT_GE(compiledRelations, 20u);
}

TEST(RouteTable, TorusDatelineCompilesAndMatches)
{
    const auto net = topo::Network::torus({4, 4}, {2, 2});
    const TorusDatelineRouting rel(net);
    const RouteTable table(rel);
    EXPECT_TRUE(table.compiled());
    EXPECT_FALSE(table.perSource());
    const auto oracle = relationOracle(rel);
    expectTableMatches(table, net, oracle, oracle);
}

TEST(RouteTable, DorCompilesNarrowOddEvenCompilesWide)
{
    const auto net = topo::Network::mesh({5, 5}, {2, 2});
    const auto dor = sweep::makeRouter(net, "xy");
    ASSERT_NE(dor, nullptr);
    const RouteTable dorTable(*dor);
    EXPECT_TRUE(dorTable.compiled());
    EXPECT_FALSE(dorTable.perSource());

    const auto oe = sweep::makeRouter(net, "odd-even");
    ASSERT_NE(oe, nullptr);
    const RouteTable oeTable(*oe);
    EXPECT_TRUE(oeTable.compiled());
    EXPECT_TRUE(oeTable.perSource());
    EXPECT_GT(oeTable.tableBytes(), dorTable.tableBytes());
}

/**
 * A relation that lies about source independence: candidate order
 * flips whenever the consulted source differs from the current node.
 * The compiler's sample check must catch the lie and recompile wide
 * instead of freezing a corrupt narrow table.
 */
class MisdeclaredRelation final : public cdg::RoutingRelation
{
  public:
    explicit MisdeclaredRelation(const topo::Network &net)
        : base(net)
    {
    }

    std::vector<topo::ChannelId>
    candidates(topo::ChannelId in, topo::NodeId at, topo::NodeId src,
               topo::NodeId dest) const override
    {
        auto out = base.candidates(in, at, src, dest);
        if (src != at)
            std::reverse(out.begin(), out.end());
        return out;
    }

    std::string name() const override { return "Misdeclared"; }
    const topo::Network &network() const override
    {
        return base.network();
    }
    cdg::SrcSensitivity
    srcSensitivity() const override
    {
        return cdg::SrcSensitivity::Independent; // the lie
    }

  private:
    routing::MinimalAdaptiveRouting base;
};

TEST(RouteTable, MisdeclaredIndependenceWidensInsteadOfCorrupting)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const MisdeclaredRelation rel(net);
    const RouteTable table(rel);
    EXPECT_TRUE(table.compiled());
    EXPECT_TRUE(table.perSource());
    const auto oracle = relationOracle(rel);
    expectTableMatches(table, net, oracle, oracle);
}

TEST(RouteTable, FaultFilterMatchesDegradedRelation)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    ASSERT_NE(rel, nullptr);
    RouteTable table(*rel);
    ASSERT_TRUE(table.compiled());

    // Kill every channel of two physical links, one at a time, the way
    // the simulator drains FaultInjector::takeNewlyDeadChannels().
    std::set<topo::ChannelId> dead;
    for (const topo::LinkId l : {topo::LinkId{3}, topo::LinkId{11}}) {
        for (int v = 0; v < net.vcsOnLink(l); ++v) {
            const topo::ChannelId c = net.channel(l, v);
            dead.insert(c);
            table.filterDeadChannel(c);
        }
    }

    // Reachability is the BASE closure (rows were compiled pre-fault);
    // the expected contents are the degraded relation's — the same
    // order-preserving filter FaultedRelationView applies.
    const auto reach = relationOracle(*rel);
    const auto degraded = [&](topo::ChannelId in, topo::NodeId at,
                              topo::NodeId src, topo::NodeId dest) {
        auto out = rel->candidates(in, at, src, dest);
        out.erase(std::remove_if(out.begin(), out.end(),
                                 [&](topo::ChannelId c) {
                                     return dead.count(c) != 0;
                                 }),
                  out.end());
        return out;
    };
    expectTableMatches(table, net, reach, degraded);
}

TEST(RouteTable, TinyBudgetFallsBackToVirtual)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    ASSERT_NE(rel, nullptr);
    const RouteTable table(*rel, RouteTable::Options{true, 64});
    EXPECT_FALSE(table.compiled());
    EXPECT_EQ(table.tableBytes(), 0u);
    // The fallback path still answers, identically to the relation.
    const auto oracle = relationOracle(*rel);
    expectTableMatches(table, net, oracle, oracle);
}

TEST(RouteTable, ProbeUnsafeRelationFallsBack)
{
    // Elevator-First asserts on phase states its own routing never
    // produces, so it opts out of probing and takes the fallback.
    const std::vector<std::pair<int, int>> elevators = {{0, 0}, {2, 2}};
    const auto net = topo::Network::partialMesh3d({3, 3, 3}, {2, 2, 1},
                                                  elevators);
    const ElevatorFirstRouting rel(net, elevators);
    EXPECT_FALSE(rel.probeSafe());
    const RouteTable table(rel);
    EXPECT_FALSE(table.compiled());
    const auto oracle = relationOracle(rel);
    expectTableMatches(table, net, oracle, oracle);
}

TEST(RouteTable, DisabledTableCountsCalls)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const routing::DimensionOrderRouting rel =
        routing::DimensionOrderRouting::xy(net);
    const RouteTable table(rel, RouteTable::Options{false, 1ull << 30});
    EXPECT_FALSE(table.compiled());
    std::vector<topo::ChannelId> scratch;
    (void)table.candidatesView(kInjectionChannel, 0, 0, 5, scratch);
    (void)table.candidatesView(kInjectionChannel, 0, 0, 6, scratch);
    EXPECT_EQ(table.calls(), 2u);
}

/**
 * End to end: a faulted simulation routed through the compiled table
 * must be bit-identical to the same run on the virtual path — the
 * route-table meta fields are the only JSON difference allowed.
 */
TEST(RouteTable, FaultedSimulationBitIdenticalTableVsVirtual)
{
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const auto rel = sweep::makeRouter(net, "fig7b");
    ASSERT_NE(rel, nullptr);
    const sim::TrafficGenerator gen(net, sim::TrafficPattern::Uniform);

    sim::SimConfig cfg;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 800;
    cfg.drainCycles = 10000;
    cfg.watchdogCycles = 2000;
    cfg.injectionRate = 0.08;
    cfg.seed = 99;
    sim::FaultEvent link;
    link.cycle = 300;
    link.src = net.node({1, 1});
    link.dst = net.node({2, 1});
    sim::FaultEvent router;
    router.cycle = 600;
    router.router = true;
    router.node = net.node({3, 0});
    cfg.faults.events = {link, router};

    cfg.routeTable = true;
    auto onTable = sim::runSimulation(net, *rel, gen, cfg);
    cfg.routeTable = false;
    auto onVirtual = sim::runSimulation(net, *rel, gen, cfg);

    // Same decisions -> same query count, even across fault events.
    EXPECT_EQ(onTable.routeComputeCalls, onVirtual.routeComputeCalls);
    EXPECT_TRUE(onTable.routeTableCompiled);
    EXPECT_FALSE(onVirtual.routeTableCompiled);

    // Erase the meta fields; everything else must match bit for bit.
    onTable.routeTableCompiled = onVirtual.routeTableCompiled = false;
    onTable.routeTablePerSource = onVirtual.routeTablePerSource = false;
    onTable.routeTableBytes = onVirtual.routeTableBytes = 0;
    EXPECT_EQ(sim::toJson(onTable), sim::toJson(onVirtual));
}

} // namespace
} // namespace ebda::routing
