/**
 * @file
 * Unit tests for the channel-class model (Definitions 1, 4, 5, 6).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/channel_class.hh"

namespace ebda::core {
namespace {

TEST(Sign, Opposite)
{
    EXPECT_EQ(opposite(Sign::Pos), Sign::Neg);
    EXPECT_EQ(opposite(Sign::Neg), Sign::Pos);
}

TEST(ChannelClass, AlgebraicNames)
{
    EXPECT_EQ(makeClass(0, Sign::Pos).algebraic(), "X1+");
    EXPECT_EQ(makeClass(0, Sign::Neg, 1).algebraic(), "X2-");
    EXPECT_EQ(makeClass(1, Sign::Pos, 2).algebraic(), "Y3+");
    EXPECT_EQ(makeClass(2, Sign::Neg).algebraic(), "Z1-");
    EXPECT_EQ(makeClass(3, Sign::Pos).algebraic(), "T1+");
    EXPECT_EQ(makeClass(5, Sign::Pos).algebraic(), "D51+");
    EXPECT_EQ(makeClass(0, Sign::Pos).algebraic(false), "X+");
}

TEST(ChannelClass, ParityNames)
{
    const auto ye =
        makeParityClass(1, Sign::Pos, 0, Parity::Even);
    EXPECT_EQ(ye.algebraic(false), "Ye+");
    const auto xo =
        makeParityClass(0, Sign::Neg, 1, Parity::Odd);
    EXPECT_EQ(xo.algebraic(false), "Xo-");
}

TEST(ChannelClass, CompassNames)
{
    EXPECT_EQ(makeClass(0, Sign::Pos).compass(), "E1");
    EXPECT_EQ(makeClass(0, Sign::Neg).compass(), "W1");
    EXPECT_EQ(makeClass(1, Sign::Pos, 1).compass(), "N2");
    EXPECT_EQ(makeClass(1, Sign::Neg).compass(), "S1");
    EXPECT_EQ(makeClass(2, Sign::Pos).compass(), "U1");
    EXPECT_EQ(makeClass(2, Sign::Neg, 3).compass(), "D4");
    EXPECT_EQ(makeClass(1, Sign::Pos).compass(false), "N");
    // Beyond 3D falls back to algebraic naming.
    EXPECT_EQ(makeClass(3, Sign::Pos).compass(), "T1+");
    // Parity suffix.
    EXPECT_EQ(makeParityClass(1, Sign::Pos, 0, Parity::Even).compass(false),
              "Ne");
    EXPECT_EQ(makeParityClass(1, Sign::Neg, 0, Parity::Odd).compass(false),
              "So");
}

TEST(ChannelClass, EqualityAndOrdering)
{
    const auto a = makeClass(0, Sign::Pos);
    const auto b = makeClass(0, Sign::Pos);
    const auto c = makeClass(0, Sign::Neg);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_LT(a, c); // Pos (0) < Neg (1)
}

TEST(ChannelClass, OverlapsDifferentComponents)
{
    const auto base = makeClass(0, Sign::Pos, 0);
    EXPECT_TRUE(base.overlaps(base));
    EXPECT_FALSE(base.overlaps(makeClass(1, Sign::Pos, 0))); // other dim
    EXPECT_FALSE(base.overlaps(makeClass(0, Sign::Neg, 0))); // other sign
    EXPECT_FALSE(base.overlaps(makeClass(0, Sign::Pos, 1))); // other VC
}

TEST(ChannelClass, OverlapsParityRegions)
{
    const auto any = makeClass(1, Sign::Pos);
    const auto even = makeParityClass(1, Sign::Pos, 0, Parity::Even);
    const auto odd = makeParityClass(1, Sign::Pos, 0, Parity::Odd);
    // Unconstrained overlaps both regions.
    EXPECT_TRUE(any.overlaps(even));
    EXPECT_TRUE(even.overlaps(any));
    // Disjoint parities on the same axis do not overlap.
    EXPECT_FALSE(even.overlaps(odd));
    EXPECT_TRUE(even.overlaps(even));
    // Same parity value on different axes still intersects (even row
    // and even column share nodes).
    const auto even_other_axis =
        makeParityClass(1, Sign::Pos, 1, Parity::Even);
    EXPECT_TRUE(even.overlaps(even_other_axis));
}

TEST(ChannelClass, HashDistinguishesFields)
{
    ChannelClassHash h;
    std::unordered_set<std::size_t> hashes;
    hashes.insert(h(makeClass(0, Sign::Pos)));
    hashes.insert(h(makeClass(0, Sign::Neg)));
    hashes.insert(h(makeClass(1, Sign::Pos)));
    hashes.insert(h(makeClass(0, Sign::Pos, 1)));
    hashes.insert(h(makeParityClass(0, Sign::Pos, 0, Parity::Even)));
    EXPECT_EQ(hashes.size(), 5u);
}

TEST(ChannelClass, ClassListToString)
{
    const ClassList list = {makeClass(0, Sign::Pos),
                            makeClass(0, Sign::Neg),
                            makeClass(1, Sign::Pos)};
    EXPECT_EQ(toString(list), "{X1+ X1- Y1+}");
    EXPECT_EQ(toString(list, false), "{X+ X- Y+}");
    EXPECT_EQ(toString(ClassList{}), "{}");
}

TEST(DimLetter, KnownLetters)
{
    EXPECT_EQ(dimLetter(0), "X");
    EXPECT_EQ(dimLetter(1), "Y");
    EXPECT_EQ(dimLetter(2), "Z");
    EXPECT_EQ(dimLetter(3), "T");
    EXPECT_EQ(dimLetter(4), "D4");
}

} // namespace
} // namespace ebda::core
