/**
 * @file
 * Unit and behavioural tests for the wormhole simulator: delivery,
 * latency sanity, throughput accounting, the deadlock watchdog (both
 * directions), atomic-VC mode and traffic patterns.
 */

#include <gtest/gtest.h>

#include "core/catalog.hh"
#include "routing/baselines.hh"
#include "routing/duato.hh"
#include "routing/ebda_routing.hh"
#include "sim/simulator.hh"

namespace ebda::sim {
namespace {

using core::makeClass;
using core::Sign;

SimConfig
lightConfig()
{
    SimConfig cfg;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 20000;
    cfg.watchdogCycles = 2000;
    cfg.injectionRate = 0.05;
    return cfg;
}

TEST(Traffic, PatternNames)
{
    EXPECT_EQ(toString(TrafficPattern::Uniform), "uniform");
    EXPECT_EQ(toString(TrafficPattern::Transpose), "transpose");
    EXPECT_EQ(toString(TrafficPattern::Hotspot), "hotspot");
}

TEST(Traffic, TransposeMapsCoordinates)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const TrafficGenerator gen(net, TrafficPattern::Transpose);
    Rng rng(1);
    const auto d = gen.dest(net.node({1, 3}), rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, net.node({3, 1}));
    // Diagonal nodes map to themselves: no traffic.
    EXPECT_FALSE(gen.dest(net.node({2, 2}), rng).has_value());
}

TEST(Traffic, BitPatterns)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    Rng rng(1);
    const TrafficGenerator comp(net, TrafficPattern::BitComplement);
    EXPECT_EQ(*comp.dest(0, rng), 15u);
    const TrafficGenerator rev(net, TrafficPattern::BitReverse);
    EXPECT_EQ(*rev.dest(1, rng), 8u); // 0001 -> 1000
    const TrafficGenerator shuf(net, TrafficPattern::Shuffle);
    EXPECT_EQ(*shuf.dest(5, rng), 10u); // 0101 -> 1010
}

TEST(Traffic, TornadoAndNeighbor)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    Rng rng(1);
    const TrafficGenerator tor(net, TrafficPattern::Tornado);
    EXPECT_EQ(*tor.dest(net.node({0, 0}), rng), net.node({1, 1}));
    const TrafficGenerator nei(net, TrafficPattern::Neighbor);
    EXPECT_EQ(*nei.dest(net.node({3, 3}), rng), net.node({0, 0}));
}

TEST(Traffic, HotspotFraction)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const TrafficGenerator gen(net, TrafficPattern::Hotspot,
                               net.node({2, 2}), 50);
    Rng rng(7);
    int hot = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        const auto d = gen.dest(net.node({0, 0}), rng);
        if (d && *d == net.node({2, 2}))
            ++hot;
    }
    // 50% direct + 1/16 of the uniform remainder.
    EXPECT_NEAR(static_cast<double>(hot) / trials, 0.5 + 0.5 / 16, 0.05);
}

TEST(Simulator, DeliversAtLowLoadXy)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    const auto result = runSimulation(net, xy, gen, lightConfig());

    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 50u);
    // Latency at 5% load is near zero-load: serialization (4 flits) +
    // hops; must exceed the packet length and stay modest.
    EXPECT_GT(result.avgLatency, 4.0);
    EXPECT_LT(result.avgLatency, 40.0);
    EXPECT_GT(result.avgHops, 1.0);
    EXPECT_LT(result.avgHops, 7.0);
    // Accepted ~ offered at low load.
    EXPECT_NEAR(result.acceptedRate, result.offeredRate, 0.02);
}

TEST(Simulator, EbDaFullyAdaptiveDelivers)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Transpose);
    const auto result = runSimulation(net, r, gen, lightConfig());
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 20u);
}

TEST(Simulator, WatchdogCatchesUnrestrictedAdaptiveDeadlock)
{
    // Fully adaptive minimal routing on a single VC deadlocks under
    // load; the watchdog must fire. (This is the simulator-side
    // counterpart of the cyclic-CDG verdict.)
    const auto net = topo::Network::mesh({4, 4}, {1, 1});

    class UnrestrictedAdaptive : public cdg::RoutingRelation
    {
      public:
        explicit UnrestrictedAdaptive(const topo::Network &n) : net(n) {}
        std::vector<topo::ChannelId>
        candidates(topo::ChannelId, topo::NodeId at, topo::NodeId,
                   topo::NodeId dest) const override
        {
            std::vector<topo::ChannelId> out;
            for (std::uint8_t d = 0; d < net.numDims(); ++d) {
                const int off = net.minimalOffset(at, dest, d);
                if (off == 0)
                    continue;
                const auto link = net.linkFrom(
                    at, d, off > 0 ? Sign::Pos : Sign::Neg);
                if (link)
                    out.push_back(net.channel(*link, 0));
            }
            return out;
        }
        std::string name() const override { return "unrestricted"; }
        const topo::Network &network() const override { return net; }

      private:
        const topo::Network &net;
    };

    const UnrestrictedAdaptive r(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg;
    cfg.injectionRate = 0.45; // deep saturation provokes the cycle
    cfg.vcDepth = 2;
    cfg.packetLength = 6;
    cfg.warmupCycles = 4000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 40000;
    cfg.watchdogCycles = 1500;
    cfg.seed = 5;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_TRUE(result.deadlocked);
}

TEST(Simulator, EbDaSurvivesLoadThatDeadlocksUnrestricted)
{
    // Same pressure, EbDa-restricted turns: no watchdog event.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const routing::EbDaRouting r(net, core::schemeFig6P4());
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg;
    cfg.injectionRate = 0.45;
    cfg.vcDepth = 2;
    cfg.packetLength = 6;
    cfg.warmupCycles = 4000;
    cfg.measureCycles = 4000;
    cfg.drainCycles = 0; // saturated: don't wait for full drain
    cfg.watchdogCycles = 1500;
    cfg.seed = 5;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
}

TEST(Simulator, DuatoNeedsAtomicBuffers)
{
    // Duato's fully adaptive routing with atomic VC allocation is
    // deadlock-free in simulation.
    const auto net = topo::Network::mesh({4, 4}, {2, 2});
    const routing::DuatoFullyAdaptive r(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.atomicVcAllocation = true;
    cfg.injectionRate = 0.2;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
}

TEST(Simulator, ZeroLoadLatencyTracksDistance)
{
    // A single-source neighbor pattern at a tiny load: latency must be
    // close to hops + packet serialization.
    const auto net = topo::Network::mesh({8}, {1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Neighbor);
    SimConfig cfg = lightConfig();
    cfg.injectionRate = 0.01;
    cfg.packetLength = 3;
    const auto result = runSimulation(net, xy, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    // Neighbor on a line: wrap to (0) for the last node is 7 hops; all
    // others 1 hop... mean stays low but above packet length.
    EXPECT_GT(result.avgLatency, 3.0);
    EXPECT_LT(result.avgLatency, 20.0);
}

TEST(Simulator, ThroughputSaturatesBelowOffered)
{
    // At an offered load far beyond capacity, accepted < offered.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.injectionRate = 0.9;
    cfg.drainCycles = 0;
    const auto result = runSimulation(net, xy, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_LT(result.acceptedRate, 0.7);
    EXPECT_GT(result.acceptedRate, 0.1);
}

TEST(Simulator, HigherLoadHigherLatency)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    SimConfig low = lightConfig();
    low.injectionRate = 0.03;
    SimConfig high = lightConfig();
    high.injectionRate = 0.25;
    high.drainCycles = 30000;

    const auto r_low = runSimulation(net, xy, gen, low);
    const auto r_high = runSimulation(net, xy, gen, high);
    EXPECT_FALSE(r_low.deadlocked);
    EXPECT_FALSE(r_high.deadlocked);
    EXPECT_GT(r_high.avgLatency, r_low.avgLatency);
    EXPECT_GE(r_high.p99Latency, r_high.p50Latency);
}

TEST(Simulator, DeterministicForFixedSeed)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    const auto a = runSimulation(net, xy, gen, lightConfig());
    const auto b = runSimulation(net, xy, gen, lightConfig());
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Simulator, RouterLatencyScalesPerHop)
{
    // A deeper router pipeline adds ~ (L-1) cycles per hop at zero
    // load.
    const auto net = topo::Network::mesh({6, 6}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);

    SimConfig fast = lightConfig();
    fast.injectionRate = 0.01;
    SimConfig deep = fast;
    deep.routerLatency = 4;

    const auto r_fast = runSimulation(net, xy, gen, fast);
    const auto r_deep = runSimulation(net, xy, gen, deep);
    EXPECT_FALSE(r_fast.deadlocked);
    EXPECT_FALSE(r_deep.deadlocked);
    ASSERT_GT(r_fast.avgHops, 1.0);
    const double extra = r_deep.avgLatency - r_fast.avgLatency;
    // Roughly 3 extra cycles per hop (same seed => same traffic).
    EXPECT_NEAR(extra, 3.0 * r_fast.avgHops, 0.35 * 3.0 * r_fast.avgHops);
}

TEST(Simulator, RejectsZeroRouterLatency)
{
    const auto net = topo::Network::mesh({3, 3}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.routerLatency = 0;
    EXPECT_DEATH(Simulator(net, xy, gen, cfg), "routerLatency");
}

class SelectionPolicies
    : public ::testing::TestWithParam<SelectionPolicy>
{
};

TEST_P(SelectionPolicies, AllDeliverDeadlockFree)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Transpose);
    SimConfig cfg = lightConfig();
    cfg.selection = GetParam();
    cfg.injectionRate = 0.15;
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SelectionPolicies,
    ::testing::Values(SelectionPolicy::MaxCredits,
                      SelectionPolicy::RoundRobin,
                      SelectionPolicy::Random,
                      SelectionPolicy::FirstCandidate));

TEST(Simulator, SelectionPolicyChangesBehaviourButStaysDeterministic)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.injectionRate = 0.2;
    cfg.selection = SelectionPolicy::Random;
    const auto a = runSimulation(net, r, gen, cfg);
    const auto b = runSimulation(net, r, gen, cfg);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Simulator, MultiFlitWormholeHoldsVcUntilTail)
{
    // With depth 2 and 6-flit packets, packets necessarily span several
    // routers (true wormhole); everything must still drain.
    const auto net = topo::Network::mesh({4, 4}, {1, 1});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.vcDepth = 2;
    cfg.packetLength = 6;
    const auto result = runSimulation(net, xy, gen, cfg);
    EXPECT_FALSE(result.deadlocked);
    EXPECT_TRUE(result.drained);
    EXPECT_GT(result.packetsMeasured, 20u);
}

// ---------------------------------------------------------------------
// Pipeline-stage unit tests: the pieces the refactor made separately
// testable — the active-set scheduler and the pure allocator kernels.

TEST(ActiveSet, SweepsInRotatedAscendingOrder)
{
    ActiveSet set(10);
    for (std::size_t i : {7u, 2u, 9u, 4u})
        set.schedule(i);
    std::vector<std::size_t> visited;
    set.sweep(5, [&](std::size_t i) {
        visited.push_back(i);
        return true;
    });
    // First member >= 5, ascending, then wrap — exactly the order the
    // monolithic full-range scan would have hit the members in.
    EXPECT_EQ(visited, (std::vector<std::size_t>{7, 9, 2, 4}));

    visited.clear();
    set.sweep(0, [&](std::size_t i) {
        visited.push_back(i);
        return true;
    });
    EXPECT_EQ(visited, (std::vector<std::size_t>{2, 4, 7, 9}));
}

TEST(ActiveSet, ScheduleIsIdempotent)
{
    ActiveSet set(4);
    set.schedule(3);
    set.schedule(3);
    set.schedule(3);
    EXPECT_EQ(set.size(), 1u);
    std::size_t visits = 0;
    set.sweep(0, [&](std::size_t) {
        ++visits;
        return true;
    });
    EXPECT_EQ(visits, 1u);
}

TEST(ActiveSet, VisitorReturnValueControlsMembership)
{
    ActiveSet set(8);
    for (std::size_t i = 0; i < 8; ++i)
        set.schedule(i);
    set.sweep(0, [](std::size_t i) { return i % 2 == 0; });
    EXPECT_EQ(set.size(), 4u);
    EXPECT_TRUE(set.contains(2));
    EXPECT_FALSE(set.contains(3));

    // Dropped indices can be re-scheduled.
    set.schedule(3);
    EXPECT_TRUE(set.contains(3));
    EXPECT_EQ(set.size(), 5u);
}

TEST(ActiveSet, MidSweepSchedulesJoinNextSweep)
{
    ActiveSet set(6);
    set.schedule(1);
    std::vector<std::size_t> first;
    set.sweep(0, [&](std::size_t i) {
        first.push_back(i);
        set.schedule(5); // must not be visited this sweep
        return false;
    });
    EXPECT_EQ(first, (std::vector<std::size_t>{1}));
    EXPECT_TRUE(set.contains(5));
    std::vector<std::size_t> second;
    set.sweep(0, [&](std::size_t i) {
        second.push_back(i);
        return false;
    });
    EXPECT_EQ(second, (std::vector<std::size_t>{5}));
}

TEST(Fabric, ZeroCycleOccupancyHorizonYieldsZeroMeans)
{
    // A run that ends at cycle 0 (or a fabric inspected before any
    // cycle elapsed) must not divide the occupancy integral by a zero
    // horizon: means are defined as 0, peaks still report.
    const auto net = topo::Network::mesh({2, 2}, {1, 1});
    SimConfig cfg;
    Fabric fab(net, cfg);
    fab.pushFlit(0, Flit{0, true, true, 0}, 0);

    const auto occ = fab.channelOccupancy(0);
    ASSERT_EQ(occ.size(), net.numChannels());
    for (const auto &o : occ)
        EXPECT_EQ(o.mean, 0.0);
    EXPECT_EQ(occ[0].peak, 1u);
}

TEST(Simulator, PacketTableRecyclesSlotsThroughFreelist)
{
    // Ejected packets release their PacketRec slots for reuse, so the
    // table's high-water mark tracks the in-flight population, not the
    // total generated count — and recycled slots must not corrupt the
    // latency accounting of packets still in flight.
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const auto xy = routing::DimensionOrderRouting::xy(net);
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    Simulator sim(net, xy, gen, lightConfig());
    const auto result = sim.run();

    ASSERT_TRUE(result.drained);
    ASSERT_FALSE(result.deadlocked);
    ASSERT_GT(result.packetsEjected, 100u);
    EXPECT_LT(sim.fabric().packets.size(), result.packetsEjected / 4);
    // Every slot is back on the freelist once the fabric drained.
    EXPECT_EQ(sim.fabric().packets.size(),
              sim.fabric().pktFreelist.size());
    // Recycled slots kept per-packet stats intact: latencies stay in
    // the zero-load envelope instead of mixing up birth cycles.
    EXPECT_GT(result.avgLatency, 4.0);
    EXPECT_LT(result.avgLatency, 60.0);
}

namespace {

/** Standalone input VCs with their rings bound to owned arena storage
 *  (outside a Fabric, rings have no slab to point into). */
struct BoundVcs
{
    static constexpr std::uint32_t kCap = 16;

    explicit BoundVcs(std::size_t n) : slab(n * kCap), ivcs(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            ivcs[i].buf.bind(&slab[i * kCap], kCap);
    }

    std::vector<Flit> slab;
    std::vector<InputVc> ivcs;
};

BoundVcs
ivcsWithFill(const std::vector<int> &fill)
{
    BoundVcs vcs(fill.size());
    for (std::size_t c = 0; c < fill.size(); ++c)
        for (int k = 0; k < fill[c]; ++k)
            vcs.ivcs[c].buf.push_back(Flit{0, false, false, 0});
    return vcs;
}

} // namespace

TEST(VcAllocatorKernel, MaxCreditsPicksMostFreeSpaceFirstOnTies)
{
    // Channel 1 holds 3 flits, channel 2 holds 1, channel 0 holds 2.
    const auto vcs = ivcsWithFill({2, 3, 1});
    Rng rng(1, 0);
    const std::vector<topo::ChannelId> free{0, 1, 2};
    EXPECT_EQ(VcAllocator::selectOutput(SelectionPolicy::MaxCredits, free,
                                        vcs.ivcs, 4, 0, rng),
              2u);
    // Ties resolve to the earliest candidate (strict > comparison).
    const auto tied = ivcsWithFill({2, 2, 2});
    EXPECT_EQ(VcAllocator::selectOutput(SelectionPolicy::MaxCredits, free,
                                        tied.ivcs, 4, 0, rng),
              0u);
}

TEST(VcAllocatorKernel, RoundRobinRotatesWithOffset)
{
    const auto vcs = ivcsWithFill({0, 0, 0});
    Rng rng(1, 0);
    const std::vector<topo::ChannelId> free{0, 1, 2};
    for (std::size_t rot = 0; rot < 7; ++rot)
        EXPECT_EQ(VcAllocator::selectOutput(SelectionPolicy::RoundRobin,
                                            free, vcs.ivcs, 4, rot, rng),
                  free[rot % free.size()]);
}

TEST(VcAllocatorKernel, RandomIsDeterministicPerStreamAndInRange)
{
    const auto vcs = ivcsWithFill({0, 0, 0, 0});
    const std::vector<topo::ChannelId> free{1, 3};
    Rng a(2017, 5), b(2017, 5);
    for (int i = 0; i < 32; ++i) {
        const auto ca = VcAllocator::selectOutput(
            SelectionPolicy::Random, free, vcs.ivcs, 4, 0, a);
        const auto cb = VcAllocator::selectOutput(
            SelectionPolicy::Random, free, vcs.ivcs, 4, 0, b);
        EXPECT_EQ(ca, cb);
        EXPECT_TRUE(ca == 1u || ca == 3u);
    }
}

TEST(VcAllocatorKernel, FirstCandidateTakesRelationOrder)
{
    const auto vcs = ivcsWithFill({9, 9, 9});
    Rng rng(1, 0);
    EXPECT_EQ(VcAllocator::selectOutput(SelectionPolicy::FirstCandidate,
                                        {2, 0, 1}, vcs.ivcs, 4, 0, rng),
              2u);
}

TEST(SwitchAllocatorKernel, HeadMayAdvanceGatesBySwitchingMode)
{
    BoundVcs vcs(2);
    InputVc &vc = vcs.ivcs[0];
    // A 4-flit packet fully buffered in this VC.
    for (int k = 0; k < 4; ++k)
        vc.buf.push_back(Flit{7, k == 0, k == 3, 0});

    // Wormhole never gates the head beyond space > 0 (checked by the
    // caller); the kernel always allows.
    EXPECT_TRUE(SwitchAllocator::headMayAdvance(SwitchingMode::Wormhole,
                                                4, vc, 1));

    // VCT needs room for the whole packet downstream.
    EXPECT_FALSE(SwitchAllocator::headMayAdvance(
        SwitchingMode::VirtualCutThrough, 4, vc, 3));
    EXPECT_TRUE(SwitchAllocator::headMayAdvance(
        SwitchingMode::VirtualCutThrough, 4, vc, 4));

    // SAF additionally needs the whole packet buffered locally.
    EXPECT_TRUE(SwitchAllocator::headMayAdvance(
        SwitchingMode::StoreAndForward, 4, vc, 4));
    vc.buf.pop_back(); // tail not yet here
    EXPECT_FALSE(SwitchAllocator::headMayAdvance(
        SwitchingMode::StoreAndForward, 4, vc, 4));
    // And the buffered run must be ONE packet: a 4-deep buffer holding
    // the tail of packet A then the head of packet B must not launch.
    InputVc &mixed = vcs.ivcs[1];
    mixed.buf.push_back(Flit{1, false, true, 0});
    mixed.buf.push_back(Flit{2, true, false, 0});
    mixed.buf.push_back(Flit{2, false, false, 0});
    mixed.buf.push_back(Flit{2, false, false, 0});
    EXPECT_FALSE(SwitchAllocator::headMayAdvance(
        SwitchingMode::StoreAndForward, 4, mixed, 4));
}

TEST(Simulator, CongestionPopulatesStallAttribution)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig();
    cfg.injectionRate = 0.8; // deep saturation
    const auto result = runSimulation(net, r, gen, cfg);

    // Saturated wormhole traffic must stall on credits and lose switch
    // arbitration; the hottest router must account for a nonzero share.
    EXPECT_GT(result.stallCreditStarved, 0u);
    EXPECT_GT(result.stallSwitchLost, 0u);
    EXPECT_GT(result.hottestRouterStalls, 0u);
    EXPECT_LT(result.hottestRouter, net.numNodes());

    // Buffers fill to the brim somewhere.
    EXPECT_EQ(result.channelOccupancyPeak,
              static_cast<std::uint64_t>(cfg.vcDepth));
    EXPECT_GT(result.channelOccupancyMean, 0.0);
}

TEST(Simulator, LightLoadKeepsOccupancyLow)
{
    const auto net = topo::Network::mesh({4, 4}, {1, 2});
    const routing::EbDaRouting r(net, core::schemeFig7b());
    const TrafficGenerator gen(net, TrafficPattern::Uniform);
    SimConfig cfg = lightConfig(); // rate 0.05
    const auto result = runSimulation(net, r, gen, cfg);
    EXPECT_GT(result.channelOccupancyPeak, 0u);
    EXPECT_LT(result.channelOccupancyMean, 1.0);
    EXPECT_TRUE(result.deadlockCycle.empty());
    EXPECT_FALSE(result.deadlockCycleInCdg);
}

} // namespace
} // namespace ebda::sim
